"""Chaos tests: SIGKILL real shard workers, prove bit-identical recovery.

The acceptance bar (DESIGN.md §12): a sharded run on the supervised
process pool must survive the SIGKILL of any single shard worker and
still produce the exact merged set of an undisturbed run — via restart
and, when a checkpoint exists, mid-run resume.  When a shard keeps dying
past its retry budget, the run must degrade *explicitly*: a
:class:`PartialResult` naming every completed and quarantined shard,
never a silently short list.

Kills are real (``os.kill(getpid(), SIGKILL)`` inside the spawned
worker, armed via the coordinator's ``chaos_kills`` hook), so these
tests exercise the whole supervision stack: heartbeat pipes, death
verdicts, slot respawn, checkpoint resume, ordered k-way merge.
"""

import pytest

from repro import enumerate_maximal_bicliques
from repro.core import BicliqueCollector
from repro.gmbe import GMBEConfig, gmbe_gpu
from repro.graph import random_bipartite
from repro.sharding import (
    DegradedShardRun,
    PartialResult,
    ResumeHandle,
    ShardCoordinator,
    ShardPlan,
    ShardRunner,
)

CFG = GMBEConfig()


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(40, 32, 0.18, seed=11)


@pytest.fixture(scope="module")
def reference(graph):
    col = BicliqueCollector()
    gmbe_gpu(graph, col, config=CFG)
    return sorted(col.bicliques)


@pytest.mark.slow
class TestProcessPoolParity:
    def test_union_bit_identical(self, graph, reference):
        report = ShardCoordinator(
            graph, 4, config=CFG, pool="process", n_workers=2
        ).run()
        assert report.bicliques == reference
        assert report.is_partial is False
        assert report.extras["shard_attempts"] == {0: 1, 1: 1, 2: 1, 3: 1}
        assert report.extras["pool_stats"]["deaths"] == 0

    def test_pool_string_validated(self, graph):
        with pytest.raises(ValueError, match="pool"):
            ShardCoordinator(graph, 2, pool="fork")

    def test_chaos_kills_require_process_backend(self, graph):
        with pytest.raises(ValueError, match="process"):
            ShardCoordinator(graph, 2, chaos_kills={0: (1, 0.0)})

    def test_api_routes_shard_pool(self, graph, reference):
        out = enumerate_maximal_bicliques(
            graph, shards=4, shard_pool="process"
        )
        assert out == reference


@pytest.mark.slow
class TestCrashRecovery:
    def test_killed_shard_restarts_bit_identical(self, graph, reference,
                                                 tmp_path):
        """Shard 1's worker is SIGKILLed on its first attempt; the retry
        (on a respawned worker) must restore the exact merged set."""
        report = ShardCoordinator(
            graph, 4, config=CFG, pool="process", n_workers=2,
            checkpoint_dir=str(tmp_path), chaos_kills={1: (1, 0.0)},
        ).run()
        assert report.bicliques == reference
        assert report.extras["shard_attempts"][1] == 2
        assert report.extras["pool_stats"]["deaths"] >= 1

    @pytest.mark.parametrize("delay", [0.0, 0.02, 0.05])
    def test_kill_at_arbitrary_instant_recovers(self, graph, reference,
                                                tmp_path, delay):
        """The kill lands wherever the timer says — before the shard
        starts, mid-enumeration, or after it finished.  Whatever the
        interleaving, the merged set must come out bit-identical."""
        report = ShardCoordinator(
            graph, 4, config=CFG, pool="process", n_workers=2,
            checkpoint_dir=str(tmp_path), checkpoint_every=16,
            chaos_kills={2: (1, delay)},
        ).run()
        assert report.bicliques == reference

    def test_killed_shard_resumes_from_mid_run_checkpoint(
        self, graph, reference, tmp_path
    ):
        """Plant a genuine mid-run snapshot for shard 1 (halt the shard
        partway, exactly what a checkpointed crash leaves behind), then
        SIGKILL its first process-pool attempt: the retry must *resume*
        from the snapshot — not restart — and merge bit-identically."""
        plan = ShardPlan.build(graph, 4)
        halted = ShardRunner(
            graph, plan, 1, config=CFG, checkpoint_dir=str(tmp_path),
            checkpoint_every=4, halt_after_tasks=6,
        ).run()
        assert halted.halted  # the snapshot really is mid-run
        report = ShardCoordinator(
            graph, 4, config=CFG, pool="process", n_workers=2,
            checkpoint_dir=str(tmp_path), chaos_kills={1: (1, 0.0)},
        ).run()
        assert report.bicliques == reference
        assert 1 in report.extras["resumed_shards"]
        assert report.extras["shard_attempts"][1] == 2


@pytest.mark.slow
class TestQuarantine:
    def test_poison_shard_degrades_to_partial(self, graph, reference,
                                              tmp_path):
        """A shard that dies on every attempt is quarantined after the
        budget; the run returns an explicit PartialResult with the full
        completed/quarantined inventory and per-shard resume handles."""
        partial = ShardCoordinator(
            graph, 4, config=CFG, pool="process", n_workers=2,
            checkpoint_dir=str(tmp_path),
            chaos_kills={2: (99, 0.0)}, max_shard_attempts=2,
        ).run()
        assert isinstance(partial, PartialResult)
        assert partial.is_partial is True
        assert partial.quarantined == [2]
        assert partial.completed_shards == [0, 1, 3]
        # the survivors' merge is still duplicate-free and a strict
        # subset of the full enumeration
        assert partial.bicliques == sorted(partial.bicliques)
        assert set(partial.bicliques) < set(reference)
        (handle,) = partial.resume
        assert isinstance(handle, ResumeHandle)
        assert handle.shard_id == 2 and handle.attempts == 2
        assert "WorkerCrashError" in handle.last_error
        assert f"{plan_sig(graph)}-0002of4" in handle.checkpoint_path
        assert partial.extras["shard_errors"] == {2: handle.last_error}

    def test_degraded_run_is_resumable_to_completion(self, graph,
                                                     reference, tmp_path):
        """Re-running the same plan over the same checkpoint directory
        without the chaos finishes the quarantined shard."""
        ShardCoordinator(
            graph, 4, config=CFG, pool="process", n_workers=2,
            checkpoint_dir=str(tmp_path),
            chaos_kills={3: (99, 0.0)}, max_shard_attempts=2,
        ).run()
        report = ShardCoordinator(
            graph, 4, config=CFG, pool="process", n_workers=2,
            checkpoint_dir=str(tmp_path),
        ).run()
        assert report.bicliques == reference

    def test_api_raises_degraded_with_partial_attached(self, graph,
                                                       monkeypatch):
        """The one-shot API promises the complete set: a PartialResult
        surfaces as DegradedShardRun carrying it, never a short list."""
        fake = PartialResult(
            plan=ShardPlan.build(graph, 4), completed=[], quarantined=[2],
            bicliques=[], counters=None, sim_time=0.0, placement=[],
            resume=[ResumeHandle(2, None, 3, "boom")],
        )
        monkeypatch.setattr(ShardCoordinator, "run", lambda self: fake)
        with pytest.raises(DegradedShardRun, match="quarantined") as ei:
            enumerate_maximal_bicliques(graph, shards=4,
                                        shard_pool="process")
        assert ei.value.partial is fake


def plan_sig(graph) -> str:
    return ShardPlan.build(graph, 4).signature()[:16]


class TestCliFlags:
    def test_pool_process_requires_shards(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--shards"):
            main(["run", "Mti", "--pool", "process"])
