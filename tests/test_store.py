"""The succinct result store (repro.store): tree buffer, delta
encoding, StoredResultSet paging, provenance, and end-to-end threading
through the kernel, shard merge, checkpoint, service, and CLI layers.
"""

from __future__ import annotations

import pickle
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import enumerate_maximal_bicliques
from repro.core.bicliques import Biclique, BicliqueCollector
from repro.gmbe import GMBEConfig, gmbe_gpu
from repro.graph import random_bipartite
from repro.store import (
    ROOT,
    LineageForest,
    PathDeltaEncoder,
    ResultStoreWriter,
    StoredResultSet,
    TreeBuffer,
    count_records,
    decode_blocks,
    materialized_nbytes,
    pack_lineages,
    unpack_lineages,
)

ALGORITHMS = ("gmbe", "gmbe-host", "mbea", "imbea", "pmbe", "oombea", "parmbe")


def _random_records(rng, n, n_u=40, n_v=50):
    recs = []
    for _ in range(n):
        left = tuple(sorted(rng.sample(range(n_u), rng.randint(1, 7))))
        right = tuple(sorted(rng.sample(range(n_v), rng.randint(1, 9))))
        recs.append((left, right))
    recs.sort()
    return recs


def _store_from(recs, block_records=16) -> StoredResultSet:
    enc = PathDeltaEncoder(block_records)
    for left, right in recs:
        enc.add(left, right)
    return StoredResultSet(enc.finish(), enc.n_records)


# ---------------------------------------------------------------------------
class TestTreeBuffer:
    def test_history_walks_root_to_node(self):
        tb = TreeBuffer()
        a = tb.add_child(ROOT, "a")
        b = tb.add_child(a, "b")
        c = tb.add_child(b, "c")
        assert tb.history(c) == ["a", "b", "c"]
        assert tb.history(a) == ["a"]
        assert tb.history(ROOT) == []

    def test_deactivate_leaf_cascades_up_dead_branch(self):
        tb = TreeBuffer()
        a = tb.add_child(ROOT, "a")
        b = tb.add_child(a, "b")
        c = tb.add_child(b, "c")
        tb.deactivate(a)
        tb.deactivate(b)
        # a and b are deactivated but pinned by live c
        assert tb.is_live(a) and tb.is_live(b)
        tb.deactivate(c)
        # the whole branch collapses in one cascade
        assert not (tb.is_live(a) or tb.is_live(b) or tb.is_live(c))
        assert len(tb) == 0
        assert tb.stats()["reclaimed"] == 3

    def test_live_sibling_pins_shared_prefix(self):
        tb = TreeBuffer()
        a = tb.add_child(ROOT, "a")
        b1 = tb.add_child(a, "b1")
        b2 = tb.add_child(a, "b2")
        tb.deactivate(a)
        tb.deactivate(b1)
        assert not tb.is_live(b1)
        assert tb.is_live(a)  # pinned by b2
        assert tb.history(b2) == ["a", "b2"]
        tb.deactivate(b2)
        assert len(tb) == 0

    def test_slots_are_reused_after_reclamation(self):
        tb = TreeBuffer()
        a = tb.add_child(ROOT, "a")
        tb.deactivate(a)
        b = tb.add_child(ROOT, "b")
        assert b == a  # free-listed slot
        assert tb.history(b) == ["b"]

    def test_reclaimed_node_access_is_actionable(self):
        tb = TreeBuffer()
        a = tb.add_child(ROOT, "a")
        tb.deactivate(a)
        with pytest.raises(ValueError, match="reclaimed"):
            tb.history(a)
        with pytest.raises(ValueError, match="not in the buffer"):
            tb.add_child(99, "x")
        with pytest.raises(ValueError, match="virtual root"):
            tb.deactivate(ROOT)

    def test_peak_live_stays_path_bounded_under_streaming(self):
        rng = random.Random(7)
        recs = _random_records(rng, 500)
        enc = PathDeltaEncoder()
        for left, right in recs:
            enc.add(left, right)
        enc.finish()
        max_path = max(len(l) + len(r) for l, r in recs)
        # O(history): the buffer never holds more than ~one record path
        assert enc.tree.peak_live <= 2 * max_path
        assert enc.tree.live_nodes == 0
        assert enc.tree.nodes_added > enc.tree.peak_live


# ---------------------------------------------------------------------------
class TestEncoding:
    @pytest.mark.parametrize("block_records", [1, 2, 7, 256])
    def test_roundtrip_bit_identical(self, block_records):
        rng = random.Random(3)
        recs = _random_records(rng, 300)
        enc = PathDeltaEncoder(block_records)
        for left, right in recs:
            enc.add(left, right)
        blocks = enc.finish()
        assert [(l, r) for _, l, r in decode_blocks(blocks)] == recs
        assert count_records(blocks) == len(recs)

    def test_blocks_decode_independently(self):
        rng = random.Random(5)
        recs = _random_records(rng, 100)
        enc = PathDeltaEncoder(8)
        for left, right in recs:
            enc.add(left, right)
        blocks = enc.finish()
        # Decoding any single block alone reproduces its slice exactly —
        # the block-start lcp=0 framing carries no cross-block state.
        for block in blocks:
            got = [(l, r) for _, l, r in decode_blocks([block])]
            assert got == recs[block.start:block.start + block.n_records]

    def test_encoded_is_smaller_than_materialized_on_shared_prefixes(self):
        base = tuple(range(30))
        recs = sorted(
            (base, (v,)) for v in range(200)
        )
        store = _store_from(recs, block_records=64)
        bqs = [Biclique(l, r) for l, r in recs]
        assert store.nbytes < 0.25 * materialized_nbytes(bqs)

    def test_add_after_finish_is_an_error(self):
        enc = PathDeltaEncoder()
        enc.add((1,), (2,))
        enc.finish()
        with pytest.raises(RuntimeError, match="finished"):
            enc.add((1,), (3,))
        with pytest.raises(ValueError, match="block_records"):
            PathDeltaEncoder(0)

    def test_empty_stream(self):
        enc = PathDeltaEncoder()
        assert enc.finish() == []
        store = StoredResultSet([], 0)
        assert len(store) == 0 and list(store) == []
        items, cur = store.page(None, 10)
        assert items == [] and cur is None


# ---------------------------------------------------------------------------
class TestStoredResultSet:
    @pytest.fixture()
    def recs(self):
        return _random_records(random.Random(11), 400)

    def test_len_iter_and_as_tuple(self, recs):
        store = _store_from(recs)
        bqs = [Biclique(l, r) for l, r in recs]
        assert len(store) == len(bqs)
        assert list(store) == bqs
        assert store.as_tuple() == tuple(bqs)
        assert 0 < store.nbytes < materialized_nbytes(bqs)

    def test_filter_pushdown_matches_post_filtering(self, recs):
        store = _store_from(recs)
        for ml, mr in [(0, 0), (3, 1), (1, 5), (4, 6), (99, 1)]:
            view = store.filtered(min_left=ml, min_right=mr)
            expect = [
                Biclique(l, r) for l, r in recs
                if len(l) >= ml and len(r) >= mr
            ]
            assert list(view) == expect
            assert len(view) == len(expect)
        # filters compose by max
        v = store.filtered(min_left=2).filtered(min_left=4, min_right=3)
        assert v.min_left == 4 and v.min_right == 3

    def test_block_skip_serves_filters_without_decoding(self, recs):
        store = _store_from(recs, block_records=8)
        # a filter no record passes: len() must be 0 via header scan
        assert len(store.filtered(min_left=50)) == 0
        assert list(store.filtered(min_right=50)) == []

    def test_cursor_pages_partition_the_stream(self, recs):
        store = _store_from(recs)
        bqs = [Biclique(l, r) for l, r in recs]
        got, cursor, pages = [], None, 0
        while True:
            items, cursor = store.page(cursor, 37)
            got.extend(items)
            pages += 1
            if cursor is None:
                break
        assert got == bqs
        assert pages == (len(bqs) + 36) // 37

    def test_cursor_is_stable_across_limits_and_pickling(self, recs):
        store = _store_from(recs)
        bqs = [Biclique(l, r) for l, r in recs]
        rng = random.Random(2)
        got, cursor = [], None
        while True:
            # vary the limit and re-load the store mid-pagination
            store = pickle.loads(pickle.dumps(store))
            items, cursor = store.page(cursor, rng.randint(1, 60))
            got.extend(items)
            if cursor is None:
                break
        assert got == bqs

    def test_cursor_stable_under_filters(self, recs):
        view = _store_from(recs).filtered(min_left=3, min_right=2)
        expect = list(view)
        got, cursor = [], None
        while True:
            items, cursor = view.page(cursor, 11)
            got.extend(items)
            if cursor is None:
                break
        assert got == expect

    def test_pages_iterator_matches_manual_paging(self, recs):
        store = _store_from(recs)
        flat = [b for page in store.pages(53) for b in page]
        assert flat == list(store)

    def test_bad_cursors_are_actionable(self, recs):
        store = _store_from(recs)
        with pytest.raises(ValueError, match="opaque"):
            store.page("not-a-cursor", 10)
        with pytest.raises(ValueError, match="negative"):
            store.page("-4", 10)
        with pytest.raises(ValueError, match="limit"):
            store.page(None, 0)

    def test_writer_sink_protocol_accepts_numpy(self):
        writer = ResultStoreWriter()
        writer(np.array([3, 5]), np.array([1, 2, 9]))
        writer.append((0, 7), [4])
        store = writer.finish()
        assert list(store) == [
            Biclique((3, 5), (1, 2, 9)),
            Biclique((0, 7), (4,)),
        ]
        assert writer.count == 2


# ---------------------------------------------------------------------------
class TestProvenance:
    def test_pack_unpack_roundtrip(self):
        rng = random.Random(13)
        lins = [
            tuple(rng.randint(0, 6) for _ in range(rng.randint(1, 8)))
            for _ in range(300)
        ]
        rows = pack_lineages(lins)
        assert unpack_lineages(rows) == sorted(lins)
        # LCP rows must not use more words than the explicit form
        assert sum(len(r) for r in rows) <= sum(len(l) + 1 for l in lins)

    def test_sibling_heavy_sets_compress(self):
        # one parent, many siblings: rows collapse to [depth-1, last]
        lins = [(4, 2, k) for k in range(100)]
        rows = pack_lineages(lins)
        assert rows[0] == [0, 4, 2, 0]
        assert all(r == [2, k] for k, r in enumerate(rows) if k > 0)

    def test_malformed_rows_are_rejected(self):
        with pytest.raises(ValueError, match="lcp"):
            unpack_lineages([[3, 1]])  # lcp exceeds previous length
        with pytest.raises(ValueError, match="malformed"):
            unpack_lineages([[]])

    def test_forest_set_semantics(self):
        forest = LineageForest([(1, 2), (1, 2, 3)])
        assert (1, 2) in forest and (1, 2, 3) in forest
        assert (1,) not in forest  # interior prefix, never marked
        assert len(forest) == 2
        forest.add((1, 2))  # idempotent
        assert len(forest) == 2
        forest.update([(0,), (2, 0)])
        assert sorted(forest) == [(0,), (1, 2), (1, 2, 3), (2, 0)]
        again = LineageForest.from_rows(forest.to_rows())
        assert sorted(again) == sorted(forest)


# ---------------------------------------------------------------------------
class TestCheckpointWireFormat:
    def test_snapshot_v2_stores_packed_paths(self):
        import json

        from repro.checkpoint import CHECKPOINT_VERSION, Snapshot

        assert CHECKPOINT_VERSION == 2
        snap = Snapshot(
            graph_fingerprint="f", config_signature=[("k", 1)],
            device_name="A100", n_gpus=1, root_cursor=0, n_roots=4,
            executed=[(2, 1), (2, 0), (2,)],
        )
        data = json.loads(snap.to_json())
        assert "executed" not in data
        assert data["executed_paths"] == [[0, 2], [1, 0], [1, 1]]
        back = Snapshot.from_json(snap.to_json())
        assert sorted(back.executed) == [(2,), (2, 0), (2, 1)]

    def test_malformed_paths_fail_actionably(self):
        import json

        from repro.checkpoint import CheckpointError, Snapshot

        snap = Snapshot(
            graph_fingerprint="f", config_signature=[], device_name="A100",
            n_gpus=1, root_cursor=0, n_roots=1,
        )
        data = json.loads(snap.to_json())
        data["executed_paths"] = [[5, 1]]  # lcp exceeds previous length
        with pytest.raises(CheckpointError, match="executed_paths"):
            Snapshot.from_json(json.dumps(data))


# ---------------------------------------------------------------------------
class TestEndToEnd:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_as_store_bit_identical_across_algorithms(self, algorithm):
        graph = random_bipartite(18, 16, 0.3, seed=4)
        direct = enumerate_maximal_bicliques(graph, algorithm=algorithm)
        store = enumerate_maximal_bicliques(
            graph, algorithm=algorithm, as_store=True
        )
        assert isinstance(store, StoredResultSet)
        assert list(store) == direct

    def test_as_store_honors_size_filters(self):
        graph = random_bipartite(20, 18, 0.35, seed=9)
        direct = enumerate_maximal_bicliques(
            graph, algorithm="oombea", min_left=2, min_right=2
        )
        store = enumerate_maximal_bicliques(
            graph, algorithm="oombea", min_left=2, min_right=2, as_store=True
        )
        assert list(store) == direct

    def test_kernel_emission_ledger_writes_into_store(self):
        graph = random_bipartite(18, 16, 0.3, seed=21)
        collector = BicliqueCollector()
        gmbe_gpu(graph, collector, config=GMBEConfig())
        writer = ResultStoreWriter()
        res = gmbe_gpu(graph, writer, config=GMBEConfig())
        store = writer.finish()
        # same emission order, not just the same set
        assert store.as_tuple() == tuple(collector.bicliques)
        assert res.n_maximal == len(store)

    def test_shard_merge_streams_into_store(self):
        from repro.sharding import ShardCoordinator, merge_shard_results_to_store

        graph = random_bipartite(22, 20, 0.3, seed=6)
        report = ShardCoordinator(graph, 3).run()
        store = merge_shard_results_to_store(report.shards)
        assert list(store) == report.bicliques
        single = enumerate_maximal_bicliques(graph, algorithm="gmbe")
        assert sorted(store) == single

    def test_shard_merge_to_store_refuses_duplicates(self):
        from repro.core.bicliques import Counters
        from repro.sharding import ShardMergeError, merge_shard_results_to_store
        from repro.sharding.runner import ShardResult

        b = Biclique((1,), (2,))
        shards = [
            ShardResult(shard_id=i, n_shards=2, bicliques=[b],
                        counters=Counters(), sim_time=0.0, owned_roots=1)
            for i in range(2)
        ]
        with pytest.raises(ShardMergeError, match="duplicate"):
            merge_shard_results_to_store(shards)

    def test_store_metrics_registered(self):
        from repro.telemetry import Telemetry, use_telemetry

        graph = random_bipartite(16, 14, 0.3, seed=8)
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            store = enumerate_maximal_bicliques(
                graph, algorithm="oombea", as_store=True
            )
            store.page(None, 5)
        snap = telemetry.registry.snapshot()
        assert snap["store.results.built"] == 1
        assert snap["store.results.records"] == len(store)
        assert snap["store.results.encoded_bytes"] == store.nbytes
        assert snap["store.pages.served"] == 1
        assert snap["store.pages.items"] == 5
        assert snap["store.treebuf.nodes_added"] > 0
        assert snap["store.treebuf.peak_live"] > 0


# ---------------------------------------------------------------------------
class TestServiceIntegration:
    @pytest.fixture()
    def graph(self):
        return random_bipartite(16, 14, 0.35, seed=17)

    def test_fetch_page_over_inline_and_store_results(self, graph):
        from repro.service import ServiceClient

        with ServiceClient(n_workers=2) as client:
            res = client.submit(graph=graph, algorithm="oombea")
            assert res.ok and res.bicliques  # inline by default
            got, cursor = [], None
            while True:
                items, cursor = client.fetch_page(res, cursor, limit=7)
                got.extend(items)
                if cursor is None:
                    break
            assert tuple(got) == res.bicliques

    def test_inline_results_zero_ships_store_only(self, graph):
        from repro.service import ServiceClient

        direct = tuple(enumerate_maximal_bicliques(graph, algorithm="oombea"))
        with ServiceClient(n_workers=2, inline_results=0) as client:
            res = client.submit(graph=graph, algorithm="oombea")
            assert res.ok
            assert res.bicliques == ()  # nothing materialized inline
            assert res.store is not None
            assert res.count == len(direct)
            got, cursor = [], None
            while True:
                items, cursor = res.fetch_page(cursor, limit=13)
                got.extend(items)
                if cursor is None:
                    break
            assert tuple(got) == direct
            # cache hit is store-backed too
            hit = client.submit(graph=graph, algorithm="oombea")
            assert hit.cache_hit and hit.bicliques == ()
            assert hit.store is not None and len(hit.store) == len(direct)

    def test_cache_charges_encoded_bytes(self, graph):
        from repro.service import ServiceClient
        from repro.service.cache import _entry_nbytes

        with ServiceClient(n_workers=2) as client:
            res = client.submit(graph=graph, algorithm="oombea")
            cache = client.broker.cache
            assert len(cache) == 1
            assert res.store is not None
            # budget reflects encoded size, far below the tuple model
            assert cache.current_bytes < _entry_nbytes(res.bicliques)
            assert cache.current_bytes >= res.store.nbytes

    def test_legacy_tuple_cache_entries_still_serve(self, graph):
        from repro.service import ResultCache, ServiceClient

        cache = ResultCache()
        with ServiceClient(n_workers=2, cache=cache) as client:
            fake = (Biclique((0,), (1,)),)
            from repro.gmbe import GMBEConfig as _Cfg

            key = ResultCache.make_key(graph, "oombea", _Cfg(), 1, 1)
            cache.put(key, fake)
            res = client.submit(graph=graph, algorithm="oombea")
            assert res.cache_hit
            assert res.bicliques == fake
            assert res.store is None
            assert res.fetch_page(None, 10) == ([fake[0]], None)


# ---------------------------------------------------------------------------
class TestCLIPagination:
    def test_run_page_limit_and_cursor(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n1 0\n1 1\n2 1\n")
        assert main(["run", str(path), "--algo", "oombea",
                     "--page-limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "next cursor: 1" in out
        assert main(["run", str(path), "--algo", "oombea",
                     "--page-limit", "1", "--cursor", "1"]) == 0
        out = capsys.readouterr().out
        assert "end of results" in out

    def test_cursor_without_page_limit_rejected(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "g.txt"
        path.write_text("0 0\n")
        with pytest.raises(SystemExit, match="requires --page-limit"):
            main(["run", str(path), "--algo", "oombea", "--cursor", "0"])

    def test_serve_page_limit(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n1 0\n1 1\n2 1\n")
        assert main(["serve", "--graph", str(path), "--algo", "oombea",
                     "--page-limit", "2", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "page 1:" in out


# ---------------------------------------------------------------------------
# Satellite: hypothesis property — the union of pages over random limit
# sequences and cursor resumptions is bit-identical to full enumeration.
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestPaginationProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        limits=st.lists(st.integers(1, 64), min_size=1, max_size=30),
        block_records=st.sampled_from([1, 3, 16, 256]),
        min_left=st.integers(0, 4),
        min_right=st.integers(0, 4),
    )
    def test_page_union_bit_identical(
        self, seed, limits, block_records, min_left, min_right
    ):
        rng = random.Random(seed)
        recs = _random_records(rng, rng.randint(0, 120))
        store = _store_from(recs, block_records).filtered(
            min_left=min_left, min_right=min_right
        )
        expect = [
            Biclique(l, r) for l, r in recs
            if len(l) >= min_left and len(r) >= min_right
        ]
        got, cursor, i = [], None, 0
        while True:
            limit = limits[i % len(limits)]
            i += 1
            # resume from a pickled copy every few pages: a cursor must
            # survive process boundaries
            if i % 3 == 0:
                store = pickle.loads(pickle.dumps(store))
            items, cursor = store.page(cursor, limit)
            got.extend(items)
            if cursor is None:
                break
        assert got == expect
        assert len(store) == len(expect)

    @settings(max_examples=5, deadline=None)
    @given(
        halt=st.integers(1, 30),
        limits=st.lists(st.integers(1, 40), min_size=1, max_size=8),
    )
    def test_pages_after_checkpoint_resume_match_uninterrupted(
        self, tmp_path_factory, halt, limits
    ):
        graph = random_bipartite(20, 18, 0.3, seed=5)
        cfg = GMBEConfig(bound_height=2, bound_size=4)
        base = BicliqueCollector()
        gmbe_gpu(graph, base, config=cfg)
        expect = sorted(base.bicliques)

        ckpt = str(tmp_path_factory.mktemp("store-resume") / "s.ckpt")
        first = BicliqueCollector()
        gmbe_gpu(graph, first, config=cfg, checkpoint_path=ckpt,
                 checkpoint_every=1, halt_after_tasks=halt)
        resumed = BicliqueCollector()
        gmbe_gpu(graph, resumed, config=cfg, checkpoint_path=ckpt,
                 resume=True)
        store = StoredResultSet.from_bicliques(sorted(resumed.bicliques))
        assert list(store) == expect

        got, cursor, i = [], None, 0
        while True:
            items, cursor = store.page(cursor, limits[i % len(limits)])
            i += 1
            got.extend(items)
            if cursor is None:
                break
        assert got == expect
