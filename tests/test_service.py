"""Tests for the enumeration service layer (`repro.service`).

Extends the fault patterns of ``tests/test_failure_injection.py`` to the
serving stack: cache hit/miss/eviction/invalidation-on-update,
queue-full rejection, duplicate-query coalescing, injected worker faults
recovering via retry, timeouts, deadlines, cancellation, priorities —
and the acceptance bar that service results are bit-identical to direct
:func:`repro.api.enumerate_maximal_bicliques` calls.
"""

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro import enumerate_maximal_bicliques
from repro.gmbe import GMBEConfig
from repro.graph import BipartiteGraph, random_bipartite
from repro.parallel import WorkerPool
from repro.service import (
    AdmissionError,
    EnumerationBroker,
    Histogram,
    Job,
    JobStatus,
    ResiliencePolicy,
    ResultCache,
    ServiceClient,
    default_runner,
    execute_with_retry,
    graph_fingerprint,
)
from repro.streaming import DynamicBipartiteGraph


class Boom(RuntimeError):
    pass


MATRIX = np.array([[1, 1, 0], [1, 1, 1], [0, 1, 1]], dtype=np.int8)

FAST_POLICY = ResiliencePolicy(timeout=30.0, max_attempts=3, backoff_base=0.001)


def run_broker(coro_fn, **broker_kwargs):
    """Run ``await coro_fn(broker)`` against a started broker."""
    broker_kwargs.setdefault("policy", FAST_POLICY)

    async def go():
        broker = EnumerationBroker(**broker_kwargs)
        await broker.start()
        try:
            return await coro_fn(broker)
        finally:
            await broker.stop()

    return asyncio.run(go())


class GatedRunner:
    """Runner whose first matching job blocks until released."""

    def __init__(self, block_priority=None):
        self.started = threading.Event()
        self.release = threading.Event()
        self.order = []
        self.block_priority = block_priority

    def __call__(self, job, graph, config):
        if job.priority == self.block_priority and not self.started.is_set():
            self.started.set()
            assert self.release.wait(10)
        self.order.append(job.min_left)
        return default_runner(job, graph, config)


# ----------------------------------------------------------------------
# Graph fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_same_content_same_fingerprint(self, paper_graph):
        rebuilt = BipartiteGraph.from_edges(
            paper_graph.n_u, paper_graph.n_v, list(paper_graph.edges()),
            name="other-name",
        )
        assert rebuilt.fingerprint == paper_graph.fingerprint

    def test_differs_on_edges_and_shape(self, paper_graph):
        minus = [e for e in paper_graph.edges()][:-1]
        other = BipartiteGraph.from_edges(paper_graph.n_u, paper_graph.n_v, minus)
        assert other.fingerprint != paper_graph.fingerprint
        wider = BipartiteGraph.from_edges(
            paper_graph.n_u, paper_graph.n_v + 1, list(paper_graph.edges())
        )
        assert wider.fingerprint != paper_graph.fingerprint

    def test_fingerprint_accepts_any_coercible_input(self):
        assert graph_fingerprint(MATRIX) == graph_fingerprint(
            BipartiteGraph.from_biadjacency(MATRIX)
        )


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def _key(self, graph, **kw):
        return ResultCache.make_key(
            graph,
            kw.get("algorithm", "gmbe"),
            kw.get("config", GMBEConfig()),
            kw.get("min_left", 1),
            kw.get("min_right", 1),
        )

    def test_roundtrip_and_lru_hit(self, paper_graph):
        cache = ResultCache()
        key = self._key(paper_graph)
        assert cache.get(key) is None
        assert cache.put(key, [("sentinel",)])
        assert cache.get(key) == (("sentinel",),)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_key_varies_with_query_identity(self, paper_graph):
        base = self._key(paper_graph)
        assert self._key(paper_graph, algorithm="mbea") != base
        assert self._key(paper_graph, min_left=2) != base
        assert self._key(paper_graph, min_right=2) != base
        assert self._key(paper_graph, config=GMBEConfig(prune=False)) != base

    def test_byte_budget_evicts_lru(self, paper_graph, tiny_path):
        # Each empty-biclique entry costs the fixed overhead; budget two.
        cache = ResultCache(max_bytes=400)
        k1 = self._key(paper_graph, min_left=1)
        k2 = self._key(paper_graph, min_left=2)
        k3 = self._key(paper_graph, min_left=3)
        cache.put(k1, [])
        cache.put(k2, [])
        cache.get(k1)  # refresh k1 so k2 is the LRU victim
        cache.put(k3, [])
        assert k1 in cache and k3 in cache and k2 not in cache
        assert cache.stats.evictions == 1
        assert cache.current_bytes <= cache.max_bytes

    def test_oversized_entry_not_stored(self, paper_graph):
        cache = ResultCache(max_bytes=64)
        key = self._key(paper_graph)
        assert not cache.put(key, [])
        assert len(cache) == 0

    def test_invalidate_tag_is_selective(self, paper_graph, tiny_path):
        cache = ResultCache()
        ka = self._key(paper_graph)
        kb = self._key(tiny_path)
        cache.put(ka, [], tag="a")
        cache.put(kb, [], tag="b")
        assert cache.invalidate_tag("a") == 1
        assert ka not in cache and kb in cache
        assert cache.stats.invalidations == 1

    def test_watch_drops_entries_on_real_mutation_only(self, paper_graph):
        cache = ResultCache()
        dyn = DynamicBipartiteGraph.from_graph(paper_graph)
        cache.watch(dyn, tag="g")
        key = self._key(dyn.snapshot())
        cache.put(key, [], tag="g")
        # duplicate insert is a no-op mutation: nothing dropped
        assert dyn.has_edge(0, 2)
        assert not dyn.insert_edge(0, 2)
        assert cache.stats.invalidations == 0 and key in cache
        # a real mutation drops the watched tag's entries
        assert dyn.insert_edge(4, 0)
        assert cache.stats.invalidations == 1 and key not in cache

    def test_unwatch_all(self, paper_graph):
        cache = ResultCache()
        dyn = DynamicBipartiteGraph.from_graph(paper_graph)
        cache.watch(dyn, tag="g")
        cache.unwatch_all()
        cache.put(self._key(paper_graph), [], tag="g")
        assert dyn.insert_edge(4, 0)
        assert len(cache) == 1


# ----------------------------------------------------------------------
# Job validation
# ----------------------------------------------------------------------
class TestJobValidation:
    def test_requires_exactly_one_graph_source(self):
        with pytest.raises(ValueError):
            Job()
        with pytest.raises(ValueError):
            Job(graph=MATRIX, graph_name="g")

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            Job(graph=MATRIX, algorithm="magic")

    def test_rejects_bad_size_filters(self):
        with pytest.raises(ValueError, match="-2"):
            Job(graph=MATRIX, min_left=-2)
        with pytest.raises(ValueError, match="1.5"):
            Job(graph=MATRIX, min_right=1.5)

    def test_rejects_bad_deadline(self):
        with pytest.raises(ValueError):
            Job(graph=MATRIX, deadline=0)

    def test_bad_config_override_fails_at_construction(self):
        with pytest.raises(ValueError):
            Job(graph=MATRIX, config_overrides={"scheduling": "psychic"})
        with pytest.raises(TypeError):
            Job(graph=MATRIX, config_overrides={"no_such_knob": 1})

    def test_resolve_config_layers_overrides(self):
        job = Job(graph=MATRIX, config_overrides={"prune": False})
        cfg = job.resolve_config(GMBEConfig(bound_height=7))
        assert cfg.bound_height == 7 and cfg.prune is False


# ----------------------------------------------------------------------
# Bit-identical results (acceptance criterion)
# ----------------------------------------------------------------------
class TestServiceMatchesDirectAPI:
    @pytest.mark.parametrize(
        "algorithm",
        ["gmbe", "gmbe-host", "mbea", "imbea", "pmbe", "oombea", "parmbe"],
    )
    def test_every_algorithm_bit_identical(self, algorithm):
        graph = random_bipartite(20, 15, 0.3, seed=7)
        direct = enumerate_maximal_bicliques(graph, algorithm=algorithm)

        async def go(broker):
            return await broker.submit(Job(graph=graph, algorithm=algorithm))

        result = run_broker(go, n_workers=2)
        assert result.ok
        assert list(result.bicliques) == direct

    def test_size_filters_and_config_flow_through(self, paper_graph):
        direct = enumerate_maximal_bicliques(
            paper_graph, algorithm="gmbe-host", min_left=2, min_right=2,
            config=GMBEConfig(prune=False),
        )

        async def go(broker):
            return await broker.submit(
                Job(
                    graph=paper_graph,
                    algorithm="gmbe-host",
                    min_left=2,
                    min_right=2,
                    config_overrides={"prune": False},
                )
            )

        result = run_broker(go, n_workers=1)
        assert list(result.bicliques) == direct


# ----------------------------------------------------------------------
# Caching through the broker
# ----------------------------------------------------------------------
class TestBrokerCaching:
    def test_second_identical_query_hits(self, paper_graph):
        async def go(broker):
            a = await broker.submit(Job(graph=paper_graph, algorithm="oombea"))
            b = await broker.submit(Job(graph=paper_graph, algorithm="oombea"))
            return a, b, broker.metrics

        a, b, metrics = run_broker(go, n_workers=1)
        assert not a.cache_hit and b.cache_hit
        assert a.bicliques == b.bicliques
        assert b.attempts == 0
        assert metrics.cache_hits == 1 and metrics.cache_misses == 1
        assert metrics.cache_hit_latency_ms.count == 1

    def test_different_filters_do_not_share_entries(self, paper_graph):
        async def go(broker):
            await broker.submit(Job(graph=paper_graph, algorithm="oombea"))
            c = await broker.submit(
                Job(graph=paper_graph, algorithm="oombea", min_left=2)
            )
            return c

        c = run_broker(go, n_workers=1)
        assert not c.cache_hit
        assert all(len(b.left) >= 2 for b in c.bicliques)

    def test_failed_jobs_are_not_cached(self, paper_graph):
        calls = {"n": 0}

        def runner(job, graph, config):
            calls["n"] += 1
            if calls["n"] == 1:
                raise Boom("first call dies")
            return default_runner(job, graph, config)

        async def go(broker):
            bad = await broker.submit(Job(graph=paper_graph, algorithm="oombea"))
            good = await broker.submit(Job(graph=paper_graph, algorithm="oombea"))
            return bad, good

        policy = ResiliencePolicy(timeout=30, max_attempts=1)
        bad, good = run_broker(go, n_workers=1, runner=runner, policy=policy)
        assert bad.status == JobStatus.FAILED
        assert good.ok and not good.cache_hit and calls["n"] == 2


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_duplicate_inflight_queries_execute_once(self, paper_graph):
        calls = {"n": 0}

        def runner(job, graph, config):
            calls["n"] += 1
            time.sleep(0.15)
            return default_runner(job, graph, config)

        async def go(broker):
            f1 = broker.submit_nowait(Job(graph=paper_graph, algorithm="oombea"))
            f2 = broker.submit_nowait(Job(graph=paper_graph, algorithm="oombea"))
            f3 = broker.submit_nowait(
                Job(graph=paper_graph, algorithm="oombea", min_left=2)
            )
            return await asyncio.gather(f1, f2, f3), broker.metrics

        (r1, r2, r3), metrics = run_broker(go, n_workers=2, runner=runner)
        assert calls["n"] == 2  # duplicate coalesced, distinct key ran
        assert r1.ok and r2.ok and r3.ok
        assert not r1.coalesced and r2.coalesced
        assert r1.bicliques == r2.bicliques
        assert r1.job_id != r2.job_id
        assert metrics.coalesced == 1

    def test_coalesced_waiters_see_the_failure(self, paper_graph):
        def runner(job, graph, config):
            time.sleep(0.1)
            raise Boom("shared execution dies")

        async def go(broker):
            f1 = broker.submit_nowait(Job(graph=paper_graph, algorithm="oombea"))
            f2 = broker.submit_nowait(Job(graph=paper_graph, algorithm="oombea"))
            return await asyncio.gather(f1, f2)

        policy = ResiliencePolicy(timeout=30, max_attempts=1)
        r1, r2 = run_broker(go, n_workers=1, runner=runner, policy=policy)
        assert r1.status == JobStatus.FAILED
        assert r2.status == JobStatus.FAILED and r2.coalesced
        assert "Boom" in r1.error


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_queue_full_rejects_explicitly(self, paper_graph):
        gate = GatedRunner(block_priority=0)

        async def go(broker):
            blocker = broker.submit_nowait(
                Job(graph=paper_graph, algorithm="oombea", priority=0)
            )
            await asyncio.to_thread(gate.started.wait, 5)
            queued = broker.submit_nowait(
                Job(graph=paper_graph, algorithm="oombea", min_left=2,
                    priority=1)
            )
            with pytest.raises(AdmissionError):
                broker.submit_nowait(
                    Job(graph=paper_graph, algorithm="oombea", min_left=3,
                        priority=1)
                )
            gate.release.set()
            return await asyncio.gather(blocker, queued), broker.metrics

        (r_block, r_queued), metrics = run_broker(
            go, n_workers=1, queue_depth=1, runner=gate
        )
        assert r_block.ok and r_queued.ok
        assert metrics.rejected == 1
        assert metrics.submitted == 3

    def test_broker_keeps_serving_after_rejection(self, paper_graph):
        gate = GatedRunner(block_priority=0)

        async def go(broker):
            blocker = broker.submit_nowait(
                Job(graph=paper_graph, algorithm="oombea", priority=0)
            )
            await asyncio.to_thread(gate.started.wait, 5)
            queued = broker.submit_nowait(
                Job(graph=paper_graph, algorithm="oombea", min_left=2)
            )
            with pytest.raises(AdmissionError):
                broker.submit_nowait(
                    Job(graph=paper_graph, algorithm="oombea", min_left=3)
                )
            gate.release.set()
            await asyncio.gather(blocker, queued)
            # Queue drained: the formerly rejected query now admits fine.
            retry = await broker.submit(
                Job(graph=paper_graph, algorithm="oombea", min_left=3)
            )
            return retry

        retry = run_broker(go, n_workers=1, queue_depth=1, runner=gate)
        assert retry.ok


# ----------------------------------------------------------------------
# Fault tolerance (extends test_failure_injection patterns)
# ----------------------------------------------------------------------
class TestFaultTolerance:
    def test_injected_fault_recovers_via_retry(self, paper_graph):
        direct = enumerate_maximal_bicliques(paper_graph, algorithm="oombea")
        calls = {"n": 0}

        def runner(job, graph, config):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise Boom(f"injected fault #{calls['n']}")
            return default_runner(job, graph, config)

        async def go(broker):
            return await broker.submit(Job(graph=paper_graph, algorithm="oombea"))

        result = run_broker(go, n_workers=1, runner=runner)
        assert result.ok
        assert result.attempts == 3 and calls["n"] == 3
        assert list(result.bicliques) == direct

    def test_permanent_fault_fails_only_its_job(self, paper_graph, tiny_path):
        def runner(job, graph, config):
            if job.min_left == 3:
                raise Boom("this job always dies")
            return default_runner(job, graph, config)

        async def go(broker):
            dead = await broker.submit(
                Job(graph=paper_graph, algorithm="oombea", min_left=3)
            )
            alive = await broker.submit(
                Job(graph=tiny_path, algorithm="oombea")
            )
            return dead, alive, broker.metrics

        dead, alive, metrics = run_broker(go, n_workers=1, runner=runner)
        assert dead.status == JobStatus.FAILED
        assert "Boom" in dead.error and "always dies" in dead.error
        assert dead.attempts == FAST_POLICY.max_attempts
        assert alive.ok  # the broker survived the poisoned job
        assert metrics.failed == 1 and metrics.completed == 1
        assert metrics.retries == FAST_POLICY.max_attempts - 1

    def test_timeout_resolves_without_blocking_broker(self, paper_graph):
        def runner(job, graph, config):
            time.sleep(0.5)
            return default_runner(job, graph, config)

        async def go(broker):
            t0 = time.perf_counter()
            res = await broker.submit(Job(graph=paper_graph, algorithm="oombea"))
            return res, time.perf_counter() - t0, broker.metrics

        policy = ResiliencePolicy(timeout=0.05, max_attempts=1)
        res, elapsed, metrics = run_broker(
            go, n_workers=1, runner=runner, policy=policy
        )
        assert res.status == JobStatus.TIMEOUT
        assert elapsed < 0.4  # resolved well before the worker finished
        assert metrics.timeouts == 1

    def test_cancel_queued_job(self, paper_graph):
        gate = GatedRunner(block_priority=0)

        async def go(broker):
            blocker = broker.submit_nowait(
                Job(graph=paper_graph, algorithm="oombea", priority=0)
            )
            await asyncio.to_thread(gate.started.wait, 5)
            target = Job(graph=paper_graph, algorithm="oombea", min_left=2,
                         priority=1)
            fut = broker.submit_nowait(target)
            assert broker.cancel(target.id)
            assert not broker.cancel(999999)
            gate.release.set()
            return await asyncio.gather(blocker, fut), broker.metrics

        (r_block, r_cancel), metrics = run_broker(go, n_workers=1, runner=gate)
        assert r_block.ok
        assert r_cancel.status == JobStatus.CANCELLED
        assert metrics.cancelled == 1
        assert gate.order == [1]  # the cancelled job never ran

    def test_deadline_expires_in_queue(self, paper_graph):
        gate = GatedRunner(block_priority=0)

        async def go(broker):
            blocker = broker.submit_nowait(
                Job(graph=paper_graph, algorithm="oombea", priority=0)
            )
            await asyncio.to_thread(gate.started.wait, 5)
            fut = broker.submit_nowait(
                Job(graph=paper_graph, algorithm="oombea", min_left=2,
                    priority=1, deadline=0.05)
            )
            await asyncio.sleep(0.1)
            gate.release.set()
            return await asyncio.gather(blocker, fut), broker.metrics

        (r_block, r_dead), metrics = run_broker(go, n_workers=1, runner=gate)
        assert r_block.ok
        assert r_dead.status == JobStatus.EXPIRED
        assert metrics.expired == 1


# ----------------------------------------------------------------------
# Job-level checkpoint/resume through the broker
# ----------------------------------------------------------------------
class TestBrokerCheckpointResume:
    def test_retry_resumes_from_checkpoint(self, paper_graph, tmp_path):
        """A crashed attempt's checkpoint is picked up by its retry."""
        direct = enumerate_maximal_bicliques(paper_graph, algorithm="gmbe")
        import os

        seen = []

        def runner(job, graph, config, checkpoint_path=None):
            seen.append(checkpoint_path)
            if len(seen) == 1:
                # simulate a crash after partial progress: leave a
                # (placeholder) checkpoint behind, then die
                with open(checkpoint_path, "w") as f:
                    f.write("{}")
                raise Boom("worker died mid-enumeration")
            assert os.path.exists(checkpoint_path)
            os.remove(checkpoint_path)  # a real resume consumes it
            return default_runner(job, graph, config)

        async def go(broker):
            result = await broker.submit(
                Job(graph=paper_graph, algorithm="gmbe")
            )
            return result, broker.metrics

        result, metrics = run_broker(
            go, n_workers=1, runner=runner, checkpoint_dir=str(tmp_path)
        )
        assert result.ok and result.attempts == 2
        # both attempts were handed the SAME stable per-job path
        assert len(seen) == 2 and seen[0] == seen[1]
        assert seen[0] is not None and seen[0].startswith(str(tmp_path))
        # the broker observed that the retry started from a checkpoint
        assert metrics.resumed == 1
        assert list(result.bicliques) == direct

    def test_default_runner_resumes_real_enumeration(self, tmp_path):
        """End-to-end: default_runner + gmbe resumes from a genuine
        mid-run checkpoint and still reports the exact biclique set."""
        graph = random_bipartite(20, 18, 0.3, seed=7)
        direct = enumerate_maximal_bicliques(graph, algorithm="gmbe")
        calls = {"n": 0}

        def runner(job, graph_, config, checkpoint_path=None):
            calls["n"] += 1
            if calls["n"] == 1:
                # first attempt halts mid-run, leaving a real checkpoint
                from repro.gmbe import gmbe_gpu

                gmbe_gpu(graph_, config=config,
                         checkpoint_path=checkpoint_path,
                         checkpoint_every=1, halt_after_tasks=5)
                raise Boom("halted mid-run")
            return default_runner(job, graph_, config,
                                  checkpoint_path=checkpoint_path)

        async def go(broker):
            result = await broker.submit(Job(graph=graph, algorithm="gmbe"))
            return result, broker.metrics

        result, metrics = run_broker(
            go, n_workers=1, runner=runner, checkpoint_dir=str(tmp_path)
        )
        assert result.ok and metrics.resumed == 1
        assert sorted(result.bicliques) == sorted(direct)
        assert len(result.bicliques) == len(set(result.bicliques))

    def test_plain_runner_gets_no_checkpoint_kwarg(self, paper_graph, tmp_path):
        """checkpoint_dir with a runner that can't take a path is inert."""

        def runner(job, graph, config):  # no checkpoint_path parameter
            return default_runner(job, graph, config)

        async def go(broker):
            result = await broker.submit(
                Job(graph=paper_graph, algorithm="oombea")
            )
            return result, broker.metrics

        result, metrics = run_broker(
            go, n_workers=1, runner=runner, checkpoint_dir=str(tmp_path)
        )
        assert result.ok and metrics.resumed == 0

    def test_no_checkpoint_dir_means_no_path(self, paper_graph):
        seen = []

        def runner(job, graph, config, checkpoint_path=None):
            seen.append(checkpoint_path)
            return default_runner(job, graph, config)

        async def go(broker):
            return await broker.submit(
                Job(graph=paper_graph, algorithm="oombea")
            )

        result = run_broker(go, n_workers=1, runner=runner)
        assert result.ok and seen == [None]


# ----------------------------------------------------------------------
# Priority dispatch
# ----------------------------------------------------------------------
class TestPriority:
    def test_lower_priority_value_dispatches_first(self, paper_graph):
        gate = GatedRunner(block_priority=0)

        async def go(broker):
            blocker = broker.submit_nowait(
                Job(graph=paper_graph, algorithm="oombea", priority=0)
            )
            await asyncio.to_thread(gate.started.wait, 5)
            low = broker.submit_nowait(
                Job(graph=paper_graph, algorithm="oombea", min_left=5,
                    priority=10)
            )
            high = broker.submit_nowait(
                Job(graph=paper_graph, algorithm="oombea", min_left=2,
                    priority=1)
            )
            gate.release.set()
            return await asyncio.gather(blocker, low, high)

        run_broker(go, n_workers=1, queue_depth=8, runner=gate)
        assert gate.order == [1, 2, 5]  # blocker, then high, then low


# ----------------------------------------------------------------------
# Invalidation on streaming updates (acceptance criterion)
# ----------------------------------------------------------------------
class TestInvalidationOnUpdate:
    def test_cache_hit_after_edge_update_is_impossible(self, paper_graph):
        async def go(broker):
            dyn = broker.register_graph("g", paper_graph)
            first = await broker.submit(Job(graph_name="g", algorithm="oombea"))
            warm = await broker.submit(Job(graph_name="g", algorithm="oombea"))
            assert warm.cache_hit
            assert dyn.insert_edge(4, 0)
            after = await broker.submit(Job(graph_name="g", algorithm="oombea"))
            expected = enumerate_maximal_bicliques(
                dyn.snapshot(), algorithm="oombea"
            )
            return first, after, expected, broker.cache

        first, after, expected, cache = run_broker(go, n_workers=1)
        assert not after.cache_hit
        assert list(after.bicliques) == expected
        assert after.bicliques != first.bicliques
        assert cache.stats.invalidations >= 1

    def test_update_drops_only_the_mutated_graphs_entries(
        self, paper_graph, tiny_path
    ):
        async def go(broker):
            dyn_a = broker.register_graph("a", paper_graph)
            broker.register_graph("b", tiny_path)
            await broker.submit(Job(graph_name="a", algorithm="oombea"))
            await broker.submit(Job(graph_name="b", algorithm="oombea"))
            dyn_a.insert_edge(0, 3)
            b_again = await broker.submit(Job(graph_name="b", algorithm="oombea"))
            a_again = await broker.submit(Job(graph_name="a", algorithm="oombea"))
            return a_again, b_again

        a_again, b_again = run_broker(go, n_workers=1)
        assert b_again.cache_hit  # untouched graph keeps its entries
        assert not a_again.cache_hit

    def test_unknown_graph_name_rejected(self):
        async def go(broker):
            with pytest.raises(ValueError, match="nope"):
                broker.submit_nowait(Job(graph_name="nope"))
            return True

        assert run_broker(go, n_workers=1)

    def test_duplicate_registration_rejected(self, paper_graph):
        async def go(broker):
            broker.register_graph("g", paper_graph)
            with pytest.raises(ValueError):
                broker.register_graph("g", paper_graph)
            return True

        assert run_broker(go, n_workers=1)


# ----------------------------------------------------------------------
# Resilience primitives
# ----------------------------------------------------------------------
class TestResiliencePrimitives:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(timeout=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_multiplier=0.5)

    def test_backoff_schedule_caps(self):
        # jitter disabled: this pins the deterministic schedule
        p = ResiliencePolicy(backoff_base=0.1, backoff_multiplier=10,
                             backoff_max=0.5, backoff_jitter=0)
        assert p.backoff_for(1) == pytest.approx(0.1)
        assert p.backoff_for(2) == pytest.approx(0.5)  # capped

    def test_backoff_jitter_spreads_after_cap(self):
        import random as _random

        p = ResiliencePolicy(backoff_base=0.1, backoff_multiplier=10,
                             backoff_max=0.5, backoff_jitter=0.25)
        rng = _random.Random(0)
        delays = [p.backoff_for(2, rng=rng) for _ in range(50)]
        # cap-then-jitter: every delay sits in [cap, cap*(1+jitter))
        assert all(0.5 <= d < 0.5 * 1.25 for d in delays)
        assert len({round(d, 9) for d in delays}) > 1  # actually spread

    def test_backoff_jitter_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_jitter=-0.1)

    def test_non_retryable_fails_immediately(self):
        # BaseException outside the retryable set (but not the loop's own
        # SystemExit/KeyboardInterrupt, which asyncio always re-raises).
        class Fatal(BaseException):
            pass

        calls = {"n": 0}

        async def attempt():
            calls["n"] += 1
            raise Fatal("not a job fault")

        async def go():
            policy = ResiliencePolicy(max_attempts=3, backoff_base=0)
            return await execute_with_retry(lambda: attempt(), policy)

        outcome = asyncio.run(go())
        assert outcome.status == "failed" and calls["n"] == 1

    def test_exhausted_deadline_short_circuits(self):
        async def attempt():  # pragma: no cover - must not run
            raise AssertionError("attempt ran past its deadline")

        async def go():
            loop = asyncio.get_running_loop()
            policy = ResiliencePolicy(max_attempts=3)
            return await execute_with_retry(
                lambda: attempt(), policy, deadline=loop.time() - 1
            )

        outcome = asyncio.run(go())
        assert outcome.status == "timeout" and outcome.attempts == 0

    def test_failed_outcome_keeps_full_retry_history(self):
        calls = {"n": 0}

        async def attempt():
            calls["n"] += 1
            raise Boom(f"failure {calls['n']}")

        async def go():
            policy = ResiliencePolicy(max_attempts=3, backoff_base=0)
            return await execute_with_retry(lambda: attempt(), policy)

        outcome = asyncio.run(go())
        assert outcome.status == "failed" and outcome.attempts == 3
        # the re-raisable exception is the *last* attempt's object...
        assert isinstance(outcome.exception, Boom)
        assert "failure 3" in str(outcome.exception)
        # ...annotated with every prior attempt (PEP 678 notes)
        notes = getattr(outcome.exception, "__notes__", outcome.exception.args)
        joined = " ".join(str(n) for n in notes)
        assert "attempt 1" in joined and "attempt 2" in joined
        assert "attempt 3" not in joined  # the last one IS the exception
        # and the structured history records all three in order
        assert len(outcome.attempt_errors) == 3
        assert all(f"attempt {i+1}" in e
                   for i, e in enumerate(outcome.attempt_errors))

    def test_raise_for_status_reraises_last_exception(self):
        async def attempt():
            raise Boom("terminal")

        async def go():
            policy = ResiliencePolicy(max_attempts=2, backoff_base=0)
            return await execute_with_retry(lambda: attempt(), policy)

        outcome = asyncio.run(go())
        with pytest.raises(Boom, match="terminal"):
            outcome.raise_for_status()

    def test_raise_for_status_returns_value_on_success(self):
        async def go():
            policy = ResiliencePolicy(max_attempts=2, backoff_base=0)

            async def attempt():
                return 42

            return await execute_with_retry(lambda: attempt(), policy)

        outcome = asyncio.run(go())
        assert outcome.raise_for_status() == 42


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_histogram_percentiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.record(v)
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95
        assert h.percentile(99) == 99
        assert h.mean == pytest.approx(50.5)
        assert h.max == 100

    def test_histogram_window_bound(self):
        h = Histogram(window=10)
        for v in range(100):
            h.record(v)
        assert h.count == 100  # lifetime count survives the window
        assert h.percentile(50) >= 90  # but percentiles use recent samples

    def test_histogram_rejects_bad_percentile(self):
        h = Histogram()
        h.record(1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_snapshot_is_json_serializable(self, paper_graph):
        async def go(broker):
            await broker.submit(Job(graph=paper_graph, algorithm="oombea"))
            await broker.submit(Job(graph=paper_graph, algorithm="oombea"))
            return broker.metrics.to_json()

        text = run_broker(go, n_workers=1)
        data = json.loads(text)
        assert data["counters"]["completed"] == 1
        assert data["counters"]["cache_hits"] == 1
        assert data["latency_ms"]["count"] == 1


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_submit_and_error_isolation(self):
        with WorkerPool(2) as pool:
            ok = pool.submit(lambda: 42)
            bad = pool.submit(lambda: (_ for _ in ()).throw(Boom("job fault")))
            assert ok.result(timeout=5) == 42
            with pytest.raises(Boom):
                bad.result(timeout=5)
            # the pool survives a raising job
            assert pool.submit(lambda: "still alive").result(timeout=5)
            assert pool.completed == 3
            assert pool.active == 0


# ----------------------------------------------------------------------
# Synchronous client facade
# ----------------------------------------------------------------------
class TestServiceClient:
    def test_submit_kwargs_job_and_mapping(self, paper_graph):
        direct = enumerate_maximal_bicliques(paper_graph, algorithm="oombea")
        with ServiceClient(n_workers=2, policy=FAST_POLICY) as client:
            a = client.submit(graph=paper_graph, algorithm="oombea")
            b = client.submit(Job(graph=paper_graph, algorithm="oombea"))
            c = client.submit({"graph": paper_graph, "algorithm": "oombea"})
            assert list(a.bicliques) == direct
            assert b.cache_hit and c.cache_hit
            with pytest.raises(TypeError):
                client.submit(Job(graph=paper_graph), algorithm="oombea")

    def test_submit_many_and_metrics(self, paper_graph, tiny_path):
        with ServiceClient(n_workers=2, policy=FAST_POLICY) as client:
            results = client.submit_many(
                [
                    {"graph": paper_graph, "algorithm": "oombea"},
                    {"graph": paper_graph, "algorithm": "oombea"},
                    {"graph": tiny_path, "algorithm": "oombea"},
                ]
            )
            assert all(r.ok for r in results)
            snap = client.metrics_snapshot()
            assert snap["counters"]["submitted"] == 3
        with pytest.raises(RuntimeError):
            client.submit(graph=paper_graph)  # closed client refuses work

    def test_register_graph_roundtrip(self, paper_graph):
        with ServiceClient(n_workers=1, policy=FAST_POLICY) as client:
            dyn = client.register_graph("g", paper_graph)
            first = client.submit(graph_name="g", algorithm="oombea")
            warm = client.submit(graph_name="g", algorithm="oombea")
            assert first.ok and warm.cache_hit
            assert dyn.insert_edge(4, 0)
            cold = client.submit(graph_name="g", algorithm="oombea")
            assert not cold.cache_hit


# ----------------------------------------------------------------------
# Tuned-config resolution (config="tuned" sentinel)
# ----------------------------------------------------------------------
class TestTunedConfigService:
    @staticmethod
    def _tuned_entry(graph, config):
        from repro.service.broker import EnumerationBroker as _B
        from repro.tuning import TunedConfig

        return TunedConfig(
            config=config,
            graph_fingerprint=graph.fingerprint,
            device_key=_B._TUNE_DEVICE_KEY,
            seed=0,
            trials=5,
            incumbent_cycles=10.0,
            default_cycles=20.0,
        )

    def test_sentinel_job_validation(self, paper_graph):
        assert Job(graph=paper_graph, config="tuned").wants_tuned
        with pytest.raises(ValueError, match="tuned"):
            Job(graph=paper_graph, config="fastest")

    def test_store_hit_resolves_and_counts(self, paper_graph, tmp_path):
        from repro.tuning import TunedConfigStore

        store = TunedConfigStore(tmp_path)
        tuned_cfg = GMBEConfig(bound_height=4, set_backend="bitset")
        store.put(self._tuned_entry(paper_graph, tuned_cfg))

        async def go(broker):
            res = await broker.submit(Job(graph=paper_graph, config="tuned"))
            return res, broker.metrics

        res, metrics = run_broker(
            go, n_workers=1, tuning_store=store, tune_on_miss=False
        )
        assert res.ok and res.count == 6
        assert metrics.tuned_hits == 1 and metrics.tuned_misses == 0

    def test_miss_falls_back_and_tunes_in_background(self, paper_graph,
                                                     tmp_path):
        from repro.tuning import TuneBudget, TunedConfigStore

        store = TunedConfigStore(tmp_path)
        budget = TuneBudget(max_trials=4, rung0_tasks=16,
                            max_rungs=1, finalists=2)

        async def go(broker):
            first = await broker.submit(
                Job(graph=paper_graph, config="tuned")
            )
            # Wait for the fire-and-forget background tune to land.
            for _ in range(200):
                if len(store):
                    break
                await asyncio.sleep(0.05)
            second = await broker.submit(
                Job(graph=paper_graph, config="tuned")
            )
            return first, second, broker.metrics

        first, second, metrics = run_broker(
            go, n_workers=2, tuning_store=store,
            tune_on_miss=True, tune_budget=budget,
        )
        assert first.ok and second.ok
        assert list(first.bicliques) == list(second.bicliques)
        assert len(store) == 1
        assert metrics.tuned_misses == 1 and metrics.tunes_started == 1
        assert metrics.tuned_hits == 1

    def test_no_background_tune_when_disabled(self, paper_graph, tmp_path):
        from repro.tuning import TunedConfigStore

        store = TunedConfigStore(tmp_path)

        async def go(broker):
            res = await broker.submit(Job(graph=paper_graph, config="tuned"))
            await asyncio.sleep(0.1)
            return res, broker.metrics

        res, metrics = run_broker(
            go, n_workers=1, tuning_store=store, tune_on_miss=False
        )
        assert res.ok
        assert metrics.tunes_started == 0 and len(store) == 0

    def test_cache_keys_use_resolved_config_not_sentinel(self, paper_graph,
                                                         tmp_path):
        """A re-tune must invalidate cache entries made under the old
        resolution: keys come from the resolved config's signature."""
        from repro.tuning import TunedConfigStore

        store = TunedConfigStore(tmp_path)

        async def go(broker):
            # Miss: resolves to the base config and caches under it.
            first = await broker.submit(
                Job(graph=paper_graph, config="tuned")
            )
            # A tune lands (different winning config than the base).
            store.put(self._tuned_entry(
                paper_graph, GMBEConfig(bound_height=4, warps_per_sm=8)
            ))
            # Same sentinel job again: were the key built from the
            # literal "tuned" string this would be a (stale) cache hit.
            second = await broker.submit(
                Job(graph=paper_graph, config="tuned")
            )
            # The base-config key is still warm for non-tuned jobs.
            third = await broker.submit(Job(graph=paper_graph))
            return first, second, third

        first, second, third = run_broker(
            go, n_workers=1, tuning_store=store, tune_on_miss=False
        )
        assert first.ok and second.ok and third.ok
        assert not second.cache_hit  # re-tune invalidated the resolution
        assert third.cache_hit  # first's fallback entry, still keyed sanely
        assert list(first.bicliques) == list(second.bicliques)

    def test_corrupt_store_entry_degrades_to_miss(self, paper_graph,
                                                  tmp_path):
        from repro.service.broker import EnumerationBroker as _B
        from repro.tuning import TunedConfigStore, store_key

        store = TunedConfigStore(tmp_path)
        bad = store.path_for(store_key(
            paper_graph.fingerprint, _B._TUNE_DEVICE_KEY
        ))
        import os as _os
        _os.makedirs(tmp_path, exist_ok=True)
        with open(bad, "w") as fh:
            fh.write("{corrupt")

        async def go(broker):
            res = await broker.submit(Job(graph=paper_graph, config="tuned"))
            return res, broker.metrics

        res, metrics = run_broker(
            go, n_workers=1, tuning_store=store, tune_on_miss=False
        )
        assert res.ok and res.count == 6
        assert metrics.tuned_misses == 1

    def test_client_accepts_store_path(self, paper_graph, tmp_path):
        tuned_cfg = GMBEConfig(bound_height=4)
        from repro.tuning import TunedConfigStore

        TunedConfigStore(tmp_path).put(
            self._tuned_entry(paper_graph, tuned_cfg)
        )
        with ServiceClient(
            n_workers=1, policy=FAST_POLICY,
            tuning_store=str(tmp_path), tune_on_miss=False,
        ) as client:
            res = client.submit(graph=paper_graph, config="tuned")
            assert res.ok and res.count == 6
            assert client.metrics_snapshot()["counters"]["tuned_hits"] == 1


# ----------------------------------------------------------------------
# Graceful degradation: degraded status, shed, circuit breaker
# ----------------------------------------------------------------------
from repro.core import Counters  # noqa: E402
from repro.sharding import (  # noqa: E402
    DegradedShardRun,
    PartialResult,
    ResumeHandle,
    ShardPlan,
)


def _fake_partial(graph, quarantined=(2,)):
    return PartialResult(
        plan=ShardPlan.build(graph, 4), completed=[],
        quarantined=list(quarantined), bicliques=[], counters=Counters(),
        sim_time=0.0, placement=[],
        resume=[ResumeHandle(q, None, 3, "WorkerCrashError: kill -9")
                for q in quarantined],
    )


class TestDegradedJobs:
    GRAPH = random_bipartite(12, 10, 0.3, seed=3)

    @staticmethod
    def _degrading_runner(job, graph, config, shards=1, shard_pool="thread"):
        if shards > 1:
            raise DegradedShardRun(_fake_partial(graph))
        return default_runner(job, graph, config)

    def test_degraded_status_with_inventory_and_no_retry(self):
        async def go(broker):
            res = await broker.submit(Job(graph=self.GRAPH, shards=4))
            # explicit partial: never 'completed', never 'failed'
            assert res.status == JobStatus.DEGRADED
            assert res.partial and not res.ok
            assert res.completed_shards == () and res.quarantined_shards == (2,)
            assert "quarantined" in res.describe()
            # the coordinator already burned the per-shard budget:
            # exactly one broker-level attempt, no retries
            assert res.attempts == 1
            assert broker.metrics.degraded == 1
            # degraded results are never cached
            res2 = await broker.submit(Job(graph=self.GRAPH, shards=4))
            assert not res2.cache_hit and not res2.coalesced
            return res

        run_broker(go, n_workers=1, runner=self._degrading_runner,
                   shard_pool="process")

    def test_degraded_bicliques_surface_filtered(self, paper_graph):
        full = tuple(enumerate_maximal_bicliques(paper_graph))

        def runner(job, graph, config, shards=1, shard_pool="thread"):
            partial = _fake_partial(graph)
            partial.bicliques = list(full)
            raise DegradedShardRun(partial)

        async def go(broker):
            res = await broker.submit(
                Job(graph=paper_graph, shards=2, min_left=2, min_right=2)
            )
            assert res.status == JobStatus.DEGRADED
            # size filters apply to the partial set exactly as they
            # would to a complete one
            assert all(len(b.left) >= 2 and len(b.right) >= 2
                       for b in res.bicliques)
            assert 0 < res.count < len(full)

        run_broker(go, n_workers=1, runner=runner)

    def test_shard_pool_forwarded_only_when_accepted(self, paper_graph):
        seen = {}

        def runner_with(job, graph, config, shards=1, shard_pool="thread"):
            seen["pool"] = shard_pool
            return []

        async def go(broker):
            await broker.submit(Job(graph=paper_graph, shards=2))

        run_broker(go, n_workers=1, runner=runner_with,
                   shard_pool="process")
        assert seen["pool"] == "process"

        def runner_without(job, graph, config, shards=1):
            seen["pool"] = "not forwarded"
            return []

        run_broker(go, n_workers=1, runner=runner_without,
                   shard_pool="process")
        assert seen["pool"] == "not forwarded"

    def test_broker_validates_degradation_knobs(self):
        with pytest.raises(ValueError, match="shard_pool"):
            EnumerationBroker(shard_pool="fork")
        with pytest.raises(ValueError, match="breaker_threshold"):
            EnumerationBroker(breaker_threshold=0)
        with pytest.raises(ValueError, match="breaker_cooldown"):
            EnumerationBroker(breaker_cooldown=0)

    def test_jobs_shed_at_dequeue(self, paper_graph):
        def slow_runner(job, graph, config):
            time.sleep(0.3)
            return []

        async def go(broker):
            f1 = broker.submit_nowait(Job(graph=paper_graph))
            f2 = broker.submit_nowait(
                Job(graph=paper_graph, min_left=2, deadline=0.05)
            )
            r1, r2 = await asyncio.gather(f1, f2)
            assert r2.status == JobStatus.EXPIRED
            assert broker.metrics.jobs_shed == 1
            assert broker.metrics.expired == 1

        run_broker(go, n_workers=1, runner=slow_runner)


class TestAutoShardCircuitBreaker:
    GRAPH = random_bipartite(12, 10, 0.3, seed=7)

    def test_opens_after_threshold_and_suppresses_auto_sharding(self):
        calls = []

        def runner(job, graph, config, shards=1, shard_pool="thread"):
            calls.append(shards)
            if shards > 1:
                raise DegradedShardRun(_fake_partial(graph))
            return []

        async def go(broker):
            # two consecutive degraded sharded runs trip the breaker
            r1 = await broker.submit(Job(graph=self.GRAPH))
            r2 = await broker.submit(Job(graph=self.GRAPH, min_left=2))
            assert r1.status == r2.status == JobStatus.DEGRADED
            assert broker.metrics.breaker_opened == 1
            # open: the same admission policy no longer volunteers jobs
            # into the dying backend — they run single-node and succeed
            r3 = await broker.submit(Job(graph=self.GRAPH, min_left=3))
            assert r3.status == JobStatus.COMPLETED
            assert broker.metrics.auto_shard_suppressed == 1
            assert calls == [4, 4, 1]
            # explicit shards are the caller's call: still honored
            r4 = await broker.submit(Job(graph=self.GRAPH, shards=2,
                                         min_left=4))
            assert r4.status == JobStatus.DEGRADED

        run_broker(go, n_workers=1, runner=runner,
                   auto_shard_over_edges=1, auto_shard_count=4,
                   breaker_threshold=2, breaker_cooldown=60.0)

    def test_half_open_probe_closes_on_success(self):
        state = {"healthy": False}

        def runner(job, graph, config, shards=1, shard_pool="thread"):
            if shards > 1 and not state["healthy"]:
                raise DegradedShardRun(_fake_partial(graph))
            return []

        async def go(broker):
            r1 = await broker.submit(Job(graph=self.GRAPH))
            assert r1.status == JobStatus.DEGRADED  # threshold=1: open
            assert broker.metrics.breaker_opened == 1
            await asyncio.sleep(0.25)  # past the cooldown -> half-open
            state["healthy"] = True
            r2 = await broker.submit(Job(graph=self.GRAPH, min_left=2))
            assert r2.status == JobStatus.COMPLETED  # the probe, sharded
            assert broker._breaker_open_until is None  # closed again
            r3 = await broker.submit(Job(graph=self.GRAPH, min_left=3))
            assert r3.status == JobStatus.COMPLETED
            assert broker.metrics.auto_shard_suppressed == 0

        run_broker(go, n_workers=1, runner=runner,
                   auto_shard_over_edges=1, auto_shard_count=4,
                   breaker_threshold=1, breaker_cooldown=0.2)

    def test_half_open_probe_reopens_on_failure(self):
        def runner(job, graph, config, shards=1, shard_pool="thread"):
            if shards > 1:
                raise DegradedShardRun(_fake_partial(graph))
            return []

        async def go(broker):
            await broker.submit(Job(graph=self.GRAPH))
            assert broker.metrics.breaker_opened == 1
            await asyncio.sleep(0.25)
            r = await broker.submit(Job(graph=self.GRAPH, min_left=2))
            assert r.status == JobStatus.DEGRADED  # the probe failed
            assert broker.metrics.breaker_opened == 2  # re-opened
            r2 = await broker.submit(Job(graph=self.GRAPH, min_left=3))
            assert r2.status == JobStatus.COMPLETED  # suppressed again
            assert broker.metrics.auto_shard_suppressed == 1

        run_broker(go, n_workers=1, runner=runner,
                   auto_shard_over_edges=1, auto_shard_count=4,
                   breaker_threshold=1, breaker_cooldown=0.2)


class TestBackoffDeadlineClamp:
    def test_backoff_never_sleeps_past_the_deadline(self):
        async def failing():
            raise Boom("nope")

        async def go():
            loop = asyncio.get_running_loop()
            policy = ResiliencePolicy(
                timeout=None, max_attempts=5,
                backoff_base=10.0, backoff_max=10.0, backoff_jitter=0.0,
            )
            t0 = loop.time()
            outcome = await execute_with_retry(
                lambda: failing(), policy, deadline=loop.time() + 0.3
            )
            return outcome, loop.time() - t0

        outcome, dt = asyncio.run(go())
        # unclamped, the first retry alone would sleep 10s
        assert dt < 2.0
        assert outcome.status == "timeout"
        assert outcome.attempts >= 1

    def test_policy_non_retryable_beats_retryable(self):
        calls = {"n": 0}

        async def attempt():
            calls["n"] += 1
            raise Boom("terminal this time")

        async def go():
            policy = ResiliencePolicy(
                max_attempts=3, backoff_base=0,
                retryable=(Exception,), non_retryable=(Boom,),
            )
            return await execute_with_retry(lambda: attempt(), policy)

        outcome = asyncio.run(go())
        assert outcome.status == "failed" and calls["n"] == 1
        assert isinstance(outcome.exception, Boom)
