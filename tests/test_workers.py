"""WorkerPool: accounting, graceful shutdown, crash attribution."""

import threading
import time

import pytest

from repro.parallel import WorkerPool


class TestAccounting:
    def test_submit_returns_result(self):
        with WorkerPool(2) as pool:
            assert pool.submit(lambda a, b: a + b, 2, 3).result() == 5

    def test_completed_counts_failures_too(self):
        with WorkerPool(2) as pool:
            ok = pool.submit(lambda: 1)
            bad = pool.submit(lambda: 1 / 0)
            ok.result()
            with pytest.raises(ZeroDivisionError):
                bad.result()
            pool.drain()
            assert pool.completed == 2

    def test_outstanding_tracks_unfinished_work(self):
        gate = threading.Event()
        with WorkerPool(1) as pool:
            futures = [pool.submit(gate.wait, 5) for _ in range(3)]
            assert pool.outstanding == 3
            gate.set()
            for f in futures:
                f.result()
            pool.drain()
            assert pool.outstanding == 0


class TestGracefulShutdown:
    def test_drain_waits_for_outstanding(self):
        with WorkerPool(2) as pool:
            futures = [pool.submit(time.sleep, 0.05) for _ in range(4)]
            assert pool.drain(timeout=5.0) is True
            assert all(f.done() for f in futures)

    def test_drain_times_out_but_pool_survives(self):
        gate = threading.Event()
        pool = WorkerPool(1)
        try:
            blocked = pool.submit(gate.wait, 10)
            assert pool.drain(timeout=0.05) is False
            # pool is still usable after a timed-out drain
            gate.set()
            blocked.result(timeout=5)
            assert pool.submit(lambda: 42).result(timeout=5) == 42
        finally:
            gate.set()
            pool.shutdown()

    def test_shutdown_with_drain_timeout_cancels_queued(self):
        gate = threading.Event()
        pool = WorkerPool(1)
        running = pool.submit(gate.wait, 10)
        queued = [pool.submit(lambda: None) for _ in range(5)]
        drained = pool.shutdown(drain_timeout=0.05)
        assert drained is False
        assert any(f.cancelled() for f in queued)
        gate.set()
        running.result(timeout=5)  # the running job finishes untouched

    def test_shutdown_reports_clean_drain(self):
        pool = WorkerPool(2)
        done = [pool.submit(lambda: 1) for _ in range(3)]
        assert pool.shutdown(drain_timeout=5.0) is True
        assert all(f.result() == 1 for f in done)


class TestCrashAttribution:
    def test_exception_carries_worker_label_note(self):
        def boom():
            raise RuntimeError("inner failure")

        with WorkerPool(1) as pool:
            future = pool.submit(boom, worker_label="shard 3/8 of job 17")
            with pytest.raises(RuntimeError, match="inner failure") as excinfo:
                future.result()
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("shard 3/8 of job 17" in n for n in notes)
        assert any("WorkerPool" in n for n in notes)

    def test_no_label_no_note(self):
        with WorkerPool(1) as pool:
            future = pool.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError) as excinfo:
                future.result()
        assert not getattr(excinfo.value, "__notes__", [])

    def test_label_never_leaks_into_fn_kwargs(self):
        def strict(a, *, b):
            return a + b

        with WorkerPool(1) as pool:
            assert (
                pool.submit(strict, 1, b=2, worker_label="x").result() == 3
            )
