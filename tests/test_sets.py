"""Unit and property tests for the sorted-set kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sets

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=60), max_size=40
).map(lambda xs: np.array(sorted(set(xs)), dtype=np.int32))


def as_set(a: np.ndarray) -> set[int]:
    return set(a.tolist())


class TestIntersect:
    def test_basic(self):
        a = np.array([1, 3, 5], dtype=np.int32)
        b = np.array([3, 4, 5, 6], dtype=np.int32)
        assert sets.intersect(a, b).tolist() == [3, 5]

    def test_empty_operands(self):
        a = np.array([1, 2], dtype=np.int32)
        assert sets.intersect(a, sets.EMPTY).tolist() == []
        assert sets.intersect(sets.EMPTY, a).tolist() == []

    def test_disjoint(self):
        a = np.array([1, 2], dtype=np.int32)
        b = np.array([3, 4], dtype=np.int32)
        assert sets.intersect(a, b).tolist() == []

    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=80)
    def test_matches_python_sets(self, a, b):
        got = as_set(sets.intersect(a, b))
        assert got == as_set(a) & as_set(b)

    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=40)
    def test_output_sorted_unique(self, a, b):
        out = sets.intersect(a, b).tolist()
        assert out == sorted(set(out))


class TestDtypePreservation:
    """Regression: empty results must carry the input dtype, not the
    module-level int32 ``EMPTY``."""

    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_intersect_empty_result_dtype(self, dtype):
        a = np.array([1, 2], dtype=dtype)
        b = np.array([3, 4], dtype=dtype)
        assert sets.intersect(a, b).dtype == dtype
        assert sets.intersect(a, a[:0]).dtype == dtype
        assert sets.intersect(a[:0], a).dtype == dtype

    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_setdiff_empty_operand_dtype(self, dtype):
        a = np.array([1, 2], dtype=dtype)
        assert sets.setdiff(a, a).dtype == dtype
        assert sets.setdiff(a[:0], a).dtype == dtype
        assert sets.setdiff(a, a[:0]).dtype == dtype

    def test_int64_inputs_stay_int64(self):
        a = np.array([10, 20], dtype=np.int64)
        b = np.array([30], dtype=np.int64)
        out = sets.intersect(a, b)
        assert out.dtype == np.int64 and len(out) == 0


class TestIntersectSize:
    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=60)
    def test_matches_intersect(self, a, b):
        assert sets.intersect_size(a, b) == len(sets.intersect(a, b))

    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=60)
    def test_matches_numpy_intersect1d(self, a, b):
        assert sets.intersect_size(a, b) == len(np.intersect1d(a, b))

    def test_empty_and_disjoint(self):
        a = np.array([1, 3, 5], dtype=np.int32)
        b = np.array([2, 4, 6], dtype=np.int32)
        assert sets.intersect_size(a, b) == 0
        assert sets.intersect_size(sets.EMPTY, a) == 0
        assert sets.intersect_size(a, sets.EMPTY) == 0
        assert sets.intersect_size(sets.EMPTY, sets.EMPTY) == 0

    def test_identical_and_mixed_dtypes(self):
        a = np.array([0, 7, 9, 12], dtype=np.int32)
        assert sets.intersect_size(a, a) == 4
        b = a.astype(np.int64)
        assert sets.intersect_size(a, b) == 4
        assert isinstance(sets.intersect_size(a, b), int)

    def test_asymmetric_lengths(self):
        big = np.arange(0, 1000, 2, dtype=np.int64)  # evens
        small = np.array([1, 2, 500, 501, 998], dtype=np.int64)
        assert sets.intersect_size(small, big) == 3
        assert sets.intersect_size(big, small) == 3


class TestSubset:
    def test_empty_is_subset(self):
        assert sets.is_subset(sets.EMPTY, np.array([1], dtype=np.int32))

    def test_longer_not_subset(self):
        a = np.array([1, 2, 3], dtype=np.int32)
        assert not sets.is_subset(a, a[:2])

    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=80)
    def test_matches_python(self, a, b):
        assert sets.is_subset(a, b) == (as_set(a) <= as_set(b))


class TestSetdiffUnion:
    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=60)
    def test_setdiff(self, a, b):
        assert as_set(sets.setdiff(a, b)) == as_set(a) - as_set(b)

    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=60)
    def test_union(self, a, b):
        assert as_set(sets.union(a, b)) == as_set(a) | as_set(b)

    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=30)
    def test_union_sorted(self, a, b):
        out = sets.union(a, b).tolist()
        assert out == sorted(out)


class TestScalarOps:
    @given(sorted_arrays, st.integers(0, 60))
    @settings(max_examples=60)
    def test_contains(self, a, x):
        assert sets.contains(a, x) == (x in as_set(a))

    @given(sorted_arrays, st.integers(0, 60))
    @settings(max_examples=60)
    def test_insert(self, a, x):
        out = sets.insert_sorted(a, x)
        assert as_set(out) == as_set(a) | {x}
        assert out.tolist() == sorted(set(out.tolist()))

    @given(sorted_arrays, st.integers(0, 60))
    @settings(max_examples=60)
    def test_remove(self, a, x):
        out = sets.remove_sorted(a, x)
        assert as_set(out) == as_set(a) - {x}

    def test_insert_existing_is_noop(self):
        a = np.array([1, 2, 3], dtype=np.int32)
        assert sets.insert_sorted(a, 2) is a
