"""Tests for busy-interval recording and active-SM curves."""

import numpy as np
import pytest

from repro.gpusim import BusyRecorder, active_sm_curve, active_units_curve


class TestRecorder:
    def test_record_and_makespan(self):
        r = BusyRecorder()
        r.record(0, 0.0, 5.0)
        r.record(1, 2.0, 9.0)
        assert r.makespan() == 9.0
        assert r.unit_end(0) == 5.0

    def test_bad_interval_rejected(self):
        r = BusyRecorder()
        with pytest.raises(ValueError):
            r.record(0, 5.0, 2.0)

    def test_empty_makespan(self):
        assert BusyRecorder().makespan() == 0.0


class TestCurves:
    def test_single_unit_curve(self):
        r = BusyRecorder()
        r.record(0, 0.0, 10.0)
        times, counts = active_units_curve(r, lambda u: u, n_samples=11)
        assert counts.tolist() == [1] * 11

    def test_two_groups_staggered(self):
        r = BusyRecorder()
        r.record(0, 0.0, 4.0)
        r.record(1, 6.0, 10.0)
        times, counts = active_units_curve(r, lambda u: u, n_samples=11)
        # active at t=0..4 (one), idle at 5, active at 6..10 (one)
        assert counts[0] == 1 and counts[5] == 0 and counts[-1] == 1

    def test_warps_grouped_per_sm(self):
        r = BusyRecorder()
        # scheduler keys are sm * 10_000 + slot
        r.record(0, 0.0, 2.0)        # SM 0, slot 0
        r.record(1, 1.0, 5.0)        # SM 0, slot 1
        r.record(10_000, 0.0, 5.0)   # SM 1, slot 0
        times, counts = active_sm_curve(r, n_samples=6)
        assert counts.max() == 2

    def test_gap_within_group_merged_only_if_overlapping(self):
        r = BusyRecorder()
        r.record(0, 0.0, 2.0)
        r.record(0, 4.0, 6.0)
        times, counts = active_units_curve(r, lambda u: 0, n_samples=7)
        assert counts[3] == 0  # idle at t=3

    def test_empty_recorder_curve(self):
        r = BusyRecorder()
        times, counts = active_units_curve(r, lambda u: u)
        assert counts.sum() == 0
