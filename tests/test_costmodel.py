"""Tests for the cross-platform cost model."""

import pytest

from repro.bench.costmodel import XEON_5318Y, CPUModel
from repro.core.bicliques import Counters


class TestCPUModel:
    def test_serial_seconds(self):
        m = CPUModel("t", ops_per_second=1e6, node_overhead_s=1e-3)
        c = Counters(nodes_generated=10, set_op_work=2_000_000)
        assert m.serial_seconds(c) == pytest.approx(2.0 + 0.01)

    def test_task_seconds(self):
        m = CPUModel("t", ops_per_second=1e6, node_overhead_s=0.0)
        assert m.task_seconds(500_000, 0) == pytest.approx(0.5)

    def test_parallel_not_slower_with_more_cores(self):
        m = XEON_5318Y
        works = [1e6 * (i % 7 + 1) for i in range(50)]
        nodes = [10] * 50
        t1 = m.parallel_seconds(works, nodes, 1)
        t16 = m.parallel_seconds(works, nodes, 16)
        t96 = m.parallel_seconds(works, nodes, 96)
        assert t96 <= t16 <= t1

    def test_parallel_schedule_structure(self):
        m = XEON_5318Y
        sched = m.parallel_schedule([1e6, 2e6], [1, 1], 2)
        assert sched.n_workers == 2
        assert len(sched.intervals) == 2

    def test_more_work_takes_longer(self):
        m = XEON_5318Y
        c1 = Counters(set_op_work=1_000_000)
        c2 = Counters(set_op_work=5_000_000)
        assert m.serial_seconds(c2) > m.serial_seconds(c1)


class TestCountersBasics:
    def test_charge(self):
        c = Counters()
        c.charge(10, 30)
        assert c.set_op_work == 40
        assert c.simt_cycles == (40 + 31) // 32 + 1

    def test_nonmaximal_ratio(self):
        c = Counters(maximal=10, non_maximal=25)
        assert c.nonmaximal_ratio() == 2.5
        assert Counters().nonmaximal_ratio() == 0.0

    def test_merge(self):
        a = Counters(nodes_generated=1, maximal=2, set_op_work=10, peak_stack_depth=3)
        b = Counters(nodes_generated=4, non_maximal=1, simt_cycles=7, peak_stack_depth=5)
        a.merge(b)
        assert a.nodes_generated == 5
        assert a.maximal == 2 and a.non_maximal == 1
        assert a.simt_cycles == 7
        assert a.peak_stack_depth == 5
