"""Cross-task batched execution tests (DESIGN.md §10).

The batching layer is a wall-clock optimization with a strict contract:
it may never change *anything* observable in the simulation — not the
biclique set, not the simulated-cycle ``Counters``, not the schedule
(``sim_time``), not checkpoint/resume or fault-recovery behavior.  These
tests pin that contract at three levels:

1. the numpy primitives in :mod:`repro.core.batch` against plain loops;
2. the lockstep runner :func:`run_batch` against the sequential
   node-buffer walk, exact counters and exact emissions;
3. the full kernel with ``batch_tasks`` off vs. on, across every
   registry graph and the execution knobs, plus checkpoint halt/resume,
   fault injection, and the telemetry on/off instrumentation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.gmbe.kernel as kernel_mod
from repro.core.batch import (
    BatchMember,
    BatchStats,
    batch_gamma_matches,
    batch_intersect,
    batch_popcount,
    batch_subset_mask,
    ragged_split,
    ragged_stack,
    run_batch,
)
from repro.core.bicliques import BicliqueCounter, Counters
from repro.core.bitset import BitsetUniverse, popcount_words
from repro.core.localcount import LocalCounter
from repro.core.tasks import build_root_task
from repro.datasets import registry
from repro.gmbe import GMBEConfig, gmbe_gpu
from repro.gmbe.host import run_task_with_node_buffer
from repro.graph import BipartiteGraph, random_bipartite
from repro.graph.preprocess import prepare


def make_random(n_u: int, n_v: int, p: float, seed: int) -> BipartiteGraph:
    return random_bipartite(n_u, n_v, p, seed=seed)


def _enumerate(graph, **kw):
    out = []
    res = gmbe_gpu(graph, lambda L, R: out.append((tuple(L), tuple(R))), **kw)
    return res, sorted(out)


# ---------------------------------------------------------------------------
# 1. primitives
# ---------------------------------------------------------------------------


class TestPrimitives:
    def _rand_words(self, rng, *shape):
        return rng.integers(0, 2**63, size=shape, dtype=np.uint64)

    def test_batch_intersect_matches_rowwise_and(self):
        rng = np.random.default_rng(0)
        rows = self._rand_words(rng, 6, 9, 4)
        masks = self._rand_words(rng, 6, 4)
        got = batch_intersect(rows, masks[:, None, :])
        for k in range(6):
            for i in range(9):
                assert (got[k, i] == (rows[k, i] & masks[k])).all()

    def test_batch_intersect_out_param(self):
        rng = np.random.default_rng(1)
        rows = self._rand_words(rng, 3, 5)
        masks = self._rand_words(rng, 3, 5)
        out = np.empty_like(rows)
        got = batch_intersect(rows, masks, out=out)
        assert got is out
        assert (out == (rows & masks)).all()

    def test_batch_popcount_matches_python_bitcount(self):
        rng = np.random.default_rng(2)
        words = self._rand_words(rng, 4, 7, 3)
        got = batch_popcount(words)
        assert got.shape == (4, 7)
        assert got.dtype == np.int64
        for k in range(4):
            for i in range(7):
                expect = sum(int(w).bit_count() for w in words[k, i])
                assert int(got[k, i]) == expect

    def test_batch_popcount_agrees_with_popcount_words(self):
        rng = np.random.default_rng(3)
        words = self._rand_words(rng, 5, 6)
        assert (
            batch_popcount(words)
            == popcount_words(words).sum(axis=-1, dtype=np.int64)
        ).all()

    def test_batch_subset_mask(self):
        rng = np.random.default_rng(4)
        masks = self._rand_words(rng, 8, 3)
        # rows ⊆ mask by construction, then flip one bit outside.
        rows = masks & self._rand_words(rng, 8, 3)
        ok = batch_subset_mask(rows, masks)
        assert ok.all()
        spoiled = rows.copy()
        spoiled[:, 0] |= ~masks[:, 0]
        assert not batch_subset_mask(spoiled, masks).any()

    def test_ragged_stack_split_roundtrip(self):
        rng = np.random.default_rng(5)
        blocks = [
            rng.integers(0, 2**63, size=(n, w), dtype=np.uint64)
            for n, w in ((3, 2), (1, 4), (5, 1), (2, 4))
        ]
        n_words = max(b.shape[1] for b in blocks)
        stacked, lengths = ragged_stack(blocks, n_words)
        assert stacked.shape == (11, n_words)
        assert lengths.tolist() == [3, 1, 5, 2]
        # zero-padding beyond each block's own word count
        for blk, chunk in zip(blocks, ragged_split(stacked, lengths)):
            assert (chunk[:, : blk.shape[1]] == blk).all()
            assert not chunk[:, blk.shape[1] :].any()


# ---------------------------------------------------------------------------
# 2. lockstep runner vs. the sequential node-buffer walk
# ---------------------------------------------------------------------------


def _bitset_root_tasks(g):
    counter = LocalCounter(g)
    tasks = []
    for v in range(g.n_v):
        t = build_root_task(g, counter, v, None, backend="bitset")
        if t is not None and t.universe is not None and len(t.cands):
            tasks.append(t)
    return counter, tasks


def _run_sequential(g, counter, tasks, *, prune=True):
    c = Counters()
    sink = BicliqueCounter()
    emitted = []
    for t in tasks:
        run_task_with_node_buffer(
            g, counter, t,
            lambda L, R: emitted.append((tuple(L), tuple(R))),
            c, prune=prune,
        )
    del sink
    return c, sorted(emitted)


def _run_lockstep(tasks, *, prune=True, stats=None):
    c = Counters()
    emitted = []
    run_batch(
        [
            BatchMember(
                universe=t.universe, left=t.left, right=t.right,
                cands=t.cands, counts=t.counts, counters=c,
                sink=lambda L, R: emitted.append((tuple(L), tuple(R))),
            )
            for t in tasks
        ],
        prune=prune,
        stats=stats,
    )
    return c, sorted(emitted)


class TestRunBatchEquivalence:
    @pytest.mark.parametrize("prune", [True, False])
    @pytest.mark.parametrize("seed", range(6))
    def test_counters_and_emissions_identical(self, seed, prune):
        g = make_random(24, 18, 0.35, seed=seed)
        counter, tasks = _bitset_root_tasks(g)
        if not tasks:
            pytest.skip("no bitset-eligible roots for this draw")
        c_seq, e_seq = _run_sequential(g, counter, tasks, prune=prune)
        c_bat, e_bat = _run_lockstep(tasks, prune=prune)
        assert e_bat == e_seq
        assert vars(c_bat) == vars(c_seq)

    def test_single_member_batch(self):
        g = make_random(16, 12, 0.5, seed=11)
        counter, tasks = _bitset_root_tasks(g)
        c_seq, e_seq = _run_sequential(g, counter, tasks[:1])
        c_bat, e_bat = _run_lockstep(tasks[:1])
        assert e_bat == e_seq and vars(c_bat) == vars(c_seq)

    def test_stats_record_rounds_and_widths(self):
        g = make_random(20, 16, 0.45, seed=3)
        counter, tasks = _bitset_root_tasks(g)
        stats = BatchStats()
        _run_lockstep(tasks, stats=stats)
        assert stats.rounds >= 1
        assert len(stats.tasks_per_round) == stats.rounds
        assert max(stats.tasks_per_round) <= len(tasks)
        assert min(stats.tasks_per_round) >= 1

    def test_batch_gamma_matches_agrees_with_scalar_gamma(self):
        from repro.core.expand import gamma_matches

        g = make_random(20, 16, 0.4, seed=7)
        counter, tasks = _bitset_root_tasks(g)
        universes = [t.universe for t in tasks]
        lefts = [t.left for t in tasks]
        right_sizes = [len(t.right) for t in tasks]
        c_bat = Counters()
        got = batch_gamma_matches(
            universes, lefts, right_sizes, [c_bat] * len(tasks)
        )
        c_seq = Counters()
        expect = [
            gamma_matches(g, L, rs, c_seq, universe=u)
            for u, L, rs in zip(universes, lefts, right_sizes)
        ]
        assert got == expect
        assert vars(c_bat) == vars(c_seq)


# ---------------------------------------------------------------------------
# 3. full kernel: batch_tasks off vs. on
# ---------------------------------------------------------------------------


class TestKernelEquivalence:
    @pytest.mark.parametrize("code", registry.DATASET_ORDER)
    def test_every_registry_graph_bit_identical(self, code):
        g = prepare(registry.load(code, scale=0.1), order="degree").graph
        r_off, e_off = _enumerate(g, config=GMBEConfig(batch_tasks="off"))
        r_on, e_on = _enumerate(g, config=GMBEConfig(batch_tasks="auto"))
        assert e_on == e_off
        assert vars(r_on.counters) == vars(r_off.counters)
        assert r_on.sim_time == r_off.sim_time

    @pytest.mark.parametrize("set_backend", ["auto", "sorted", "bitset"])
    @pytest.mark.parametrize("order", ["degree", "degeneracy", "none"])
    def test_backend_and_order_combos(self, set_backend, order, paper_graph):
        g = make_random(28, 20, 0.3, seed=1)
        for graph in (paper_graph, g):
            base = GMBEConfig(
                set_backend=set_backend, order=order, batch_tasks="off"
            )
            on = GMBEConfig(
                set_backend=set_backend, order=order, batch_tasks="auto"
            )
            r_off, e_off = _enumerate(graph, config=base)
            r_on, e_on = _enumerate(graph, config=on)
            assert e_on == e_off
            assert vars(r_on.counters) == vars(r_off.counters)
            assert r_on.sim_time == r_off.sim_time

    @pytest.mark.parametrize("batch_tasks", [1, 2, 7, 64])
    def test_explicit_batch_sizes(self, batch_tasks):
        g = make_random(30, 24, 0.3, seed=5)
        _, e_off = _enumerate(g, config=GMBEConfig(batch_tasks="off"))
        r_on, e_on = _enumerate(g, config=GMBEConfig(batch_tasks=batch_tasks))
        assert e_on == e_off

    @pytest.mark.parametrize("scheduling", ["task", "warp", "block"])
    def test_split_tasks_with_batching(self, scheduling):
        """Deep splits: batch-eligible leaves mixed with split parents."""
        g = make_random(32, 26, 0.35, seed=9)
        kw = dict(
            scheduling=scheduling, bound_height=2, bound_size=8,
            set_backend="bitset",
        )
        r_off, e_off = _enumerate(g, config=GMBEConfig(batch_tasks="off", **kw))
        r_on, e_on = _enumerate(g, config=GMBEConfig(batch_tasks="auto", **kw))
        assert e_on == e_off
        assert vars(r_on.counters) == vars(r_off.counters)
        assert r_on.sim_time == r_off.sim_time

    def test_multi_gpu_with_batching(self):
        g = make_random(28, 22, 0.35, seed=13)
        r_off, e_off = _enumerate(
            g, config=GMBEConfig(batch_tasks="off"), n_gpus=2
        )
        r_on, e_on = _enumerate(
            g, config=GMBEConfig(batch_tasks="auto"), n_gpus=2
        )
        assert e_on == e_off
        assert r_on.sim_time == r_off.sim_time


class TestRobustness:
    def test_fault_injection_equivalence(self):
        from repro.gpusim.faults import FaultPlan

        g = make_random(26, 20, 0.35, seed=2)
        cfg_off = GMBEConfig(batch_tasks="off", max_task_retries=50)
        cfg_on = GMBEConfig(batch_tasks="auto", max_task_retries=50)
        for seed in (0, 7, 23):
            plan = lambda: FaultPlan(
                seed, p_sm_crash=0.02, p_warp_hang=0.03,
                p_queue_drop=0.02, p_mem_pressure=0.02, max_faults=32,
            )
            r_off, e_off = _enumerate(g, config=cfg_off, fault_plan=plan())
            r_on, e_on = _enumerate(g, config=cfg_on, fault_plan=plan())
            assert r_off.extras["tasks_lost"] == 0
            assert r_on.extras["tasks_lost"] == 0
            assert e_on == e_off
            assert r_on.sim_time == r_off.sim_time

    def test_checkpoint_halt_resume_with_batching(self, tmp_path):
        g = make_random(30, 24, 0.35, seed=4)
        cfg = GMBEConfig(
            batch_tasks="auto", bound_height=2, bound_size=8,
            set_backend="bitset",
        )
        _, base = _enumerate(g, config=GMBEConfig(batch_tasks="off"))
        ckpt = tmp_path / "batch.ckpt"
        r1, out1 = _enumerate(
            g, config=cfg, checkpoint_path=str(ckpt),
            checkpoint_every=8, halt_after_tasks=40,
        )
        if r1.extras.get("halted"):
            assert ckpt.exists()
            r2, _ = _enumerate(
                g, config=cfg, checkpoint_path=str(ckpt), resume=True
            )
            assert r2.extras["resumed"] is True
            _, out_full = _enumerate(g, config=cfg)
            assert out_full == base
        else:
            assert out1 == base


# ---------------------------------------------------------------------------
# telemetry instrumentation
# ---------------------------------------------------------------------------


class TestTelemetry:
    def test_batch_metrics_populated_when_enabled(self):
        from repro.telemetry import Telemetry

        g = make_random(26, 20, 0.4, seed=6)
        t = Telemetry()
        gmbe_gpu(g, config=GMBEConfig(batch_tasks="auto"), telemetry=t)
        rounds = t.registry.get("sim.batch.rounds")
        hist = t.registry.get("sim.batch.tasks_per_round")
        assert rounds is not None and rounds.value >= 1
        assert hist is not None and hist.count >= 1
        assert hist.max >= 1

    def test_no_batch_metrics_when_batching_off(self):
        from repro.telemetry import Telemetry

        g = make_random(20, 16, 0.4, seed=6)
        t = Telemetry()
        gmbe_gpu(g, config=GMBEConfig(batch_tasks="off"), telemetry=t)
        assert t.registry.get("sim.batch.rounds") is None

    def test_zero_per_round_overhead_without_telemetry(self, monkeypatch):
        """Telemetry off ⇒ the batch path must not allocate or update any
        stats object — the only admissible cost is the single
        ``stats is None`` check inside :func:`run_batch`."""
        seen = []
        real = run_batch

        def spy(members, *, prune=True, stats=None):
            seen.append(stats)
            return real(members, prune=prune, stats=stats)

        monkeypatch.setattr(kernel_mod, "run_batch", spy)
        g = make_random(26, 20, 0.4, seed=6)
        gmbe_gpu(g, config=GMBEConfig(batch_tasks="auto"), telemetry=None)
        assert seen, "batched path never engaged"
        assert all(s is None for s in seen)

    def test_stats_object_threaded_when_telemetry_on(self, monkeypatch):
        from repro.telemetry import Telemetry

        seen = []
        real = run_batch

        def spy(members, *, prune=True, stats=None):
            seen.append(stats)
            return real(members, prune=prune, stats=stats)

        monkeypatch.setattr(kernel_mod, "run_batch", spy)
        g = make_random(26, 20, 0.4, seed=6)
        gmbe_gpu(g, config=GMBEConfig(batch_tasks="auto"), telemetry=Telemetry())
        assert seen and all(isinstance(s, BatchStats) for s in seen)
        assert len({id(s) for s in seen}) == 1  # one stats object per run


# ---------------------------------------------------------------------------
# property: any batch_tasks value is invisible to the simulation
# ---------------------------------------------------------------------------


@st.composite
def small_graphs(draw):
    n_u = draw(st.integers(1, 8))
    n_v = draw(st.integers(1, 7))
    edges = draw(
        st.sets(
            st.tuples(st.integers(0, n_u - 1), st.integers(0, n_v - 1)),
            max_size=n_u * n_v,
        )
    )
    return BipartiteGraph.from_edges(n_u, n_v, list(edges))


@pytest.mark.slow
@given(
    small_graphs(),
    st.sampled_from(["auto", 1, 2, 3, 17]),
    st.sampled_from(["auto", "sorted", "bitset"]),
)
@settings(max_examples=40, deadline=None)
def test_property_batching_is_invisible(g, batch_tasks, set_backend):
    r_off, e_off = _enumerate(
        g, config=GMBEConfig(batch_tasks="off", set_backend=set_backend)
    )
    r_on, e_on = _enumerate(
        g, config=GMBEConfig(batch_tasks=batch_tasks, set_backend=set_backend)
    )
    assert e_on == e_off
    assert vars(r_on.counters) == vars(r_off.counters)
    assert r_on.sim_time == r_off.sim_time
