"""Tests for the Fig. 7 memory-demand model."""

import pytest

from repro.gpusim import A100, V100, MemoryModel
from repro.graph.stats import GraphStats


@pytest.fixture
def bx_stats():
    """BookCrossing's real Table 1 row — drives the paper's arithmetic."""
    return GraphStats("BX", 340523, 105278, 1149739, 2502, 151645, 13601, 53915)


class TestPaperArithmetic:
    def test_naive_per_subtree_3_67_gb(self, bx_stats):
        # The paper's arithmetic uses decimal GB: 13601*(13601+53915)*4 B.
        m = MemoryModel(bx_stats)
        assert m.naive_subtree_bytes() / 1e9 == pytest.approx(3.67, abs=0.01)

    def test_node_buffer_595_kb(self, bx_stats):
        # (3*13601 + 2*53915) * 4 B = 595 decimal KB.
        m = MemoryModel(bx_stats)
        assert m.node_buffer_bytes() / 1e3 == pytest.approx(595, abs=1)

    def test_saving_factor_thousands(self, bx_stats):
        """§4.1 claims a 6,178x saving per procedure on BookCrossing."""
        m = MemoryModel(bx_stats)
        factor = m.naive_subtree_bytes() / m.node_buffer_bytes()
        assert factor == pytest.approx(6178, rel=0.02)

    def test_naive_exceeds_a100_on_bx(self, bx_stats):
        m = MemoryModel(bx_stats)
        assert not m.demand_without_reuse(A100).fits(A100)

    def test_reuse_fits_a100_on_bx(self, bx_stats):
        m = MemoryModel(bx_stats)
        assert m.demand_with_reuse(A100).fits(A100)

    def test_over_10k_procedures_fit(self, bx_stats):
        """§4.1: 'an A100 of 40 GB is adequate to run over 10k
        procedures on BookCrossing'."""
        m = MemoryModel(bx_stats)
        assert m.max_concurrent_procedures(A100) > 10_000


class TestModelStructure:
    def test_total_bytes(self, bx_stats):
        m = MemoryModel(bx_stats)
        d = m.demand_with_reuse(A100)
        assert d.total_bytes == d.graph_bytes + d.per_procedure_bytes * d.n_procedures

    def test_reuse_smaller_than_naive(self, bx_stats):
        m = MemoryModel(bx_stats)
        assert (
            m.demand_with_reuse(V100).total_bytes
            < m.demand_without_reuse(V100).total_bytes
        )

    def test_graph_bytes_scale_with_edges(self):
        small = MemoryModel(GraphStats("s", 10, 10, 20, 3, 5, 3, 5))
        big = MemoryModel(GraphStats("b", 10, 10, 80, 3, 5, 3, 5))
        assert big.graph_bytes() > small.graph_bytes()
