"""Tests for the table/series formatting helpers."""

from repro.bench.tables import format_series, format_si, format_table, log_bucket


class TestFormatSi:
    def test_plain(self):
        assert format_si(0) == "0"
        assert format_si(12.3) == "12.3"

    def test_kilo_mega_giga(self):
        assert format_si(1500) == "1.5k"
        assert format_si(2_500_000) == "2.5M"
        assert format_si(3_200_000_000) == "3.2G"

    def test_small_values_scientific(self):
        assert "e" in format_si(1.2e-6)

    def test_negative(self):
        assert format_si(-2000) == "-2k"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a  ")
        assert all(len(line) >= len("a    bbb") - 2 for line in lines)

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_rows(self):
        out = format_table(["x", "y"], [])
        assert len(out.splitlines()) == 2


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("s", ["a", "b"], [1.0, 2.0])
        assert out.startswith("s: ")
        assert "a=1" in out and "b=2" in out


class TestLogBucket:
    def test_buckets(self):
        assert log_bucket(0) == "0"
        assert log_bucket(5) == "1e0"
        assert log_bucket(123) == "1e2"
        assert log_bucket(0.05) == "1e-2"
