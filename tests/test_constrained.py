"""Tests for size-constrained enumeration and maximum-biclique search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BicliqueCollector,
    constrained_mbe,
    maximum_biclique,
    oombea,
)
from repro.graph import (
    BipartiteGraph,
    complete_bipartite,
    planted_bicliques,
    random_bipartite,
)


def filtered_reference(g, p, q):
    col = BicliqueCollector()
    oombea(g, col)
    return {b for b in col.as_set() if len(b.left) >= p and len(b.right) >= q}


class TestConstrainedMBE:
    @pytest.mark.parametrize("p,q", [(1, 1), (2, 2), (3, 2), (2, 4), (5, 5)])
    def test_matches_filtered_enumeration(self, p, q):
        for seed in range(3):
            g = random_bipartite(18, 14, 0.3, seed=seed)
            col = BicliqueCollector()
            constrained_mbe(g, p, q, col)
            assert col.as_set() == filtered_reference(g, p, q), (seed, p, q)

    def test_swapped_orientation(self):
        """Bounds apply in the caller's orientation even when the §5
        side-swap flips L and R internally."""
        g = random_bipartite(8, 15, 0.35, seed=7)  # will be swapped
        col = BicliqueCollector()
        constrained_mbe(g, 3, 2, col)
        assert col.as_set() == filtered_reference(g, 3, 2)

    def test_pruning_reduces_nodes(self):
        g = planted_bicliques(
            80, 50, [(10, 8), (9, 6)], noise_p=0.04, overlap=0.3, seed=5
        )
        loose = constrained_mbe(g, 1, 1)
        tight = constrained_mbe(g, 6, 5)
        assert tight.counters.nodes_generated < loose.counters.nodes_generated

    def test_invalid_bounds(self, paper_graph):
        with pytest.raises(ValueError):
            constrained_mbe(paper_graph, 0, 1)

    def test_counts_match_result(self):
        g = random_bipartite(20, 15, 0.3, seed=9)
        col = BicliqueCollector()
        res = constrained_mbe(g, 2, 2, col)
        assert res.n_maximal == col.count

    @given(st.integers(0, 10_000), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_property_random(self, seed, p, q):
        rng = np.random.default_rng(seed)
        m = (rng.random((rng.integers(2, 12), rng.integers(2, 10))) < 0.4)
        g = BipartiteGraph.from_biadjacency(m.astype(np.int8))
        col = BicliqueCollector()
        constrained_mbe(g, p, q, col)
        assert col.as_set() == filtered_reference(g, p, q)


class TestMaximumBiclique:
    def test_complete_graph(self):
        best, res = maximum_biclique(complete_bipartite(4, 9))
        assert best.n_edges == 36
        assert res.n_maximal == 1

    def test_matches_enumeration_max(self):
        for seed in range(5):
            g = random_bipartite(16, 12, 0.35, seed=seed)
            col = BicliqueCollector()
            oombea(g, col)
            want = max(b.n_edges for b in col.as_set())
            best, _ = maximum_biclique(g)
            assert best.n_edges == want

    def test_objectives_differ(self):
        # A star maximizes vertices but a block maximizes balance.
        g = planted_bicliques(40, 30, [(6, 6)], noise_p=0.0, seed=3)
        star_u = 39
        edges = list(g.edges()) + [(star_u, v) for v in range(30)]
        g2 = BipartiteGraph.from_edges(40, 30, edges)
        by_balance, _ = maximum_biclique(g2, objective="balanced")
        assert min(len(by_balance.left), len(by_balance.right)) >= 6

    def test_bounds_infeasible(self):
        best, res = maximum_biclique(
            random_bipartite(6, 6, 0.3, seed=1), min_left=7, min_right=7
        )
        assert best is None and res.n_maximal == 0

    def test_bound_pruning_effective(self):
        g = planted_bicliques(
            100, 60, [(14, 10)], noise_p=0.05, seed=8
        )
        _, res = maximum_biclique(g)
        col = BicliqueCollector()
        full = oombea(g, col)
        assert res.counters.nodes_generated < full.counters.nodes_generated

    def test_unknown_objective(self, paper_graph):
        with pytest.raises(ValueError):
            maximum_biclique(paper_graph, objective="area51")

    def test_result_is_valid_biclique(self):
        from repro.core import verify_biclique

        g = random_bipartite(20, 16, 0.3, seed=11)
        best, _ = maximum_biclique(g)
        is_bc, is_max = verify_biclique(g, best.left, best.right)
        assert is_bc and is_max

    def test_empty_graph(self):
        best, res = maximum_biclique(BipartiteGraph.from_edges(3, 3, []))
        assert best is None
