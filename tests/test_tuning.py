"""Tests for the repro.tuning autotuning subsystem.

Covers the four layers independently — features, search space, the
successive-halving engine (against a synthetic evaluator, no simulator),
and the persistent store — plus the end-to-end ``tune()`` contracts:
fixed-seed determinism, the tuned-never-worse guarantee, and the
store-hit-costs-zero-simulator-work property.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.gmbe import DEFAULT_CONFIG, GMBEConfig
from repro.graph import random_bipartite
from repro.tuning import (
    Dimension,
    EvalOutcome,
    SearchSpace,
    SuccessiveHalving,
    TUNER_VERSION,
    TuneBudget,
    TunedConfig,
    TunedConfigStore,
    TuningStoreError,
    compute_features,
    default_space,
    default_store,
    device_key,
    resolve_config,
    store_key,
    tune,
)
from repro.tuning.store import STORE_ENV_VAR


@pytest.fixture
def graph():
    """Small but non-trivial workload: enough tasks for rung caps to
    bite, small enough that a full tune stays sub-second."""
    return random_bipartite(60, 40, 0.12, seed=7)


class TestFeatures:
    def test_basic_invariants(self, paper_graph):
        f = compute_features(paper_graph)
        assert (f.n_u, f.n_v, f.n_edges) == (5, 4, paper_graph.n_edges)
        assert 0.0 < f.density <= 1.0
        assert f.max_deg_u >= f.avg_deg_u > 0
        assert f.max_deg_v >= f.avg_deg_v > 0
        assert f.skew_u >= 1.0 and f.skew_v >= 1.0
        assert f.two_hop_max_v >= 1

    def test_deterministic(self, graph):
        assert compute_features(graph) == compute_features(graph)

    def test_dict_round_trip(self, graph):
        f = compute_features(graph)
        assert type(f).from_dict(f.to_dict()) == f


class TestDimension:
    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError, match="no choices"):
            Dimension("order", ())
        with pytest.raises(ValueError, match="duplicate"):
            Dimension("order", ("degree", "degree"))

    def test_rejects_bad_priors(self):
        with pytest.raises(ValueError, match="priors"):
            Dimension("order", ("a", "b"), priors=(1.0,))
        with pytest.raises(ValueError, match="> 0"):
            Dimension("order", ("a", "b"), priors=(1.0, 0.0))

    def test_uniform_default_and_ranking(self):
        d = Dimension("order", ("a", "b", "c"))
        assert d.priors == (1.0, 1.0, 1.0)
        assert d.ranked() == ("a", "b", "c")  # ties keep declaration order
        d = Dimension("order", ("a", "b", "c"), priors=(1.0, 3.0, 2.0))
        assert d.ranked() == ("b", "c", "a")


class TestSearchSpace:
    def test_rejects_non_config_dimension(self):
        with pytest.raises(ValueError, match="not GMBEConfig fields"):
            SearchSpace(dimensions=(Dimension("block_size", (128,)),))

    def test_assignment_round_trip(self, graph):
        space = default_space(compute_features(graph))
        cfg = space.to_config(space.prior_best())
        assert space.to_config(space.assignment_of(cfg)) == cfg

    def test_coarse_grid_center_and_size(self, graph):
        space = default_space(compute_features(graph))
        grid = space.coarse_grid()
        assert grid[0] == space.prior_best()
        expected = 1 + sum(len(d.choices) - 1 for d in space.dimensions)
        assert len(grid) == expected

    def test_candidates_deterministic_unique_capped(self, graph):
        space = default_space(compute_features(graph))
        a = space.candidates(40, seed=3)
        b = space.candidates(40, seed=3)
        assert a == b
        assert len(a) == len(set(a)) == 40
        assert space.candidates(40, seed=4) != a  # sampler tail is seeded

    def test_candidates_rejects_bad_cap(self, graph):
        space = default_space(compute_features(graph))
        with pytest.raises(ValueError):
            space.candidates(0, seed=0)

    def test_priors_follow_features(self):
        # Dense hub-block graph: bitset backend outranks sorted.
        dense = compute_features(random_bipartite(40, 30, 0.4, seed=1))
        space = default_space(dense)
        backend = {d.name: d for d in space.dimensions}["set_backend"]
        ranked = backend.ranked()
        assert ranked.index("bitset") < ranked.index("sorted")

    def test_base_knobs_are_fixed(self, graph):
        space = default_space(
            compute_features(graph), base=GMBEConfig(prune=False)
        )
        for cfg in space.candidates(10, seed=0):
            assert cfg.prune is False


class TestTuneBudget:
    def test_validation(self):
        for bad in (
            {"max_trials": 0},
            {"rung0_tasks": 0},
            {"rung_growth": 1},
            {"max_rungs": -1},
            {"finalists": 0},
        ):
            with pytest.raises(ValueError):
                TuneBudget(**bad)

    def test_from_trials_shapes(self):
        small = TuneBudget.from_trials(4)
        assert small.max_trials == 4 and small.max_rungs == 1
        big = TuneBudget.from_trials(24)
        assert big.max_trials == 24 and big.max_rungs == 2
        with pytest.raises(ValueError):
            TuneBudget.from_trials(0)


class TestSuccessiveHalving:
    """Engine behaviour against a synthetic, simulator-free evaluator:
    a config's 'full cycles' is a deterministic function of its knobs
    and a capped run reports a fraction of it (a valid lower bound)."""

    @staticmethod
    def _full_cycles(cfg: GMBEConfig) -> float:
        return float(cfg.bound_height * 100 + cfg.warps_per_sm)

    def _evaluator(self, calls):
        def evaluate(cfg: GMBEConfig, cap: int | None) -> EvalOutcome:
            calls.append((cfg, cap))
            full = self._full_cycles(cfg)
            if cap is None:
                return EvalOutcome(cycles=full, completed=True)
            # Capped run: observes a prefix of the full makespan.
            return EvalOutcome(
                cycles=min(full, cap * 10.0), completed=cap * 10.0 >= full
            )

        return evaluate

    def _candidates(self):
        return [
            GMBEConfig(bound_height=h, warps_per_sm=w)
            for h in (4, 8, 20, 48)
            for w in (8, 16)
        ]

    def test_finds_true_best(self):
        calls = []
        sh = SuccessiveHalving(
            evaluate=self._evaluator(calls),
            budget=TuneBudget(rung0_tasks=16, max_rungs=2, finalists=2),
        )
        best, trials = sh.run(self._candidates())
        assert best is not None
        assert self._full_cycles(best.config) == min(
            self._full_cycles(c) for c in self._candidates()
        )
        assert len(trials) == len(self._candidates())

    def test_deterministic_trial_sequence(self):
        runs = []
        for _ in range(2):
            calls = []
            sh = SuccessiveHalving(
                evaluate=self._evaluator(calls),
                budget=TuneBudget(rung0_tasks=16, max_rungs=2, finalists=2),
            )
            best, _ = sh.run(self._candidates())
            runs.append((best.config, calls))
        assert runs[0] == runs[1]

    def test_provable_prune_against_incumbent(self):
        calls = []
        sh = SuccessiveHalving(
            evaluate=self._evaluator(calls),
            budget=TuneBudget(rung0_tasks=16, max_rungs=2, finalists=2),
        )
        # Incumbent better than every candidate's rung-0 lower bound
        # except the very best ones: most trials must die pruned and
        # never receive a full (cap=None) evaluation.
        best, trials = sh.run(self._candidates(), incumbent_cycles=500.0)
        pruned = [t for t in trials if t.pruned]
        assert pruned
        full_evals = [cfg for cfg, cap in calls if cap is None]
        assert all(self._full_cycles(c) <= 900 for c in full_evals)
        if best is not None:
            assert best.cycles <= 500.0

    def test_hopeless_incumbent_returns_none(self):
        sh = SuccessiveHalving(
            evaluate=self._evaluator([]),
            budget=TuneBudget(rung0_tasks=1, max_rungs=1, finalists=1),
        )
        best, trials = sh.run(self._candidates(), incumbent_cycles=0.0)
        assert best is None
        assert all(t.pruned for t in trials)

    def test_empty_candidates(self):
        sh = SuccessiveHalving(evaluate=self._evaluator([]))
        best, trials = sh.run([])
        assert best is None and trials == []


class TestStore:
    def _entry(self, **over):
        base = dict(
            config=GMBEConfig(bound_height=8, set_backend="bitset"),
            graph_fingerprint="f" * 64,
            device_key="A100x1",
            seed=0,
            trials=12,
            incumbent_cycles=100.0,
            default_cycles=250.0,
        )
        base.update(over)
        return TunedConfig(**base)

    def test_round_trip(self, tmp_path):
        store = TunedConfigStore(tmp_path)
        entry = self._entry()
        path = store.put(entry)
        assert os.path.exists(path)
        got = store.get("f" * 64, "A100x1")
        assert got == entry
        assert got.speedup == pytest.approx(2.5)
        assert len(store) == 1

    def test_miss_returns_none(self, tmp_path):
        store = TunedConfigStore(tmp_path)
        assert store.get("0" * 64, "A100x1") is None
        assert store.entries() == []
        assert len(store) == 0

    def test_keys_separate_graph_device_version(self):
        keys = {
            store_key("a", "A100x1"),
            store_key("b", "A100x1"),
            store_key("a", "A100x2"),
            store_key("a", "2080Ti2x1"),
            store_key("a", "A100x1", tuner_version=TUNER_VERSION + 1),
        }
        assert len(keys) == 5

    def test_version_bump_retires_entries(self, tmp_path):
        store = TunedConfigStore(tmp_path)
        store.put(self._entry())
        assert store.get(
            "f" * 64, "A100x1", tuner_version=TUNER_VERSION + 1
        ) is None

    def test_corrupt_file_raises_actionable_error(self, tmp_path):
        store = TunedConfigStore(tmp_path)
        entry = self._entry()
        path = store.put(entry)
        with open(path, "w") as fh:
            fh.write("{not json")
        with pytest.raises(TuningStoreError, match="gmbe tune"):
            store.get("f" * 64, "A100x1")

    def test_wrong_kind_rejected(self, tmp_path):
        store = TunedConfigStore(tmp_path)
        path = store.put(self._entry())
        with open(path, "w") as fh:
            json.dump({"kind": "something-else"}, fh)
        with pytest.raises(TuningStoreError, match="kind"):
            store.get("f" * 64, "A100x1")

    def test_address_mismatch_rejected(self, tmp_path):
        # A hand-copied file under the wrong content address must not be
        # served for a different graph.
        store = TunedConfigStore(tmp_path)
        entry = self._entry()
        wrong = store.path_for(store_key("0" * 64, "A100x1"))
        os.makedirs(tmp_path, exist_ok=True)
        with open(wrong, "w") as fh:
            fh.write(entry.to_json())
        with pytest.raises(TuningStoreError, match="content address"):
            store.get("0" * 64, "A100x1")

    def test_put_is_atomic_no_tmp_left(self, tmp_path):
        store = TunedConfigStore(tmp_path)
        store.put(self._entry())
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_default_store_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "envstore"))
        assert default_store().root == str(tmp_path / "envstore")

    def test_device_key(self):
        from repro.gpusim.device import A100

        assert device_key(A100, 1) == "A100x1"
        assert device_key(A100, 4) == "A100x4"


BUDGET = TuneBudget(max_trials=8, rung0_tasks=16, max_rungs=1, finalists=2)


class TestTune:
    def test_fixed_seed_is_fully_deterministic(self, graph):
        a = tune(graph, budget=BUDGET, seed=5)
        b = tune(graph, budget=BUDGET, seed=5)
        assert a.config == b.config
        assert a.trials == b.trials
        assert a.incumbent_cycles == b.incumbent_cycles
        assert a.provenance["history"] == b.provenance["history"]

    def test_never_worse_than_default(self, graph):
        entry = tune(graph, budget=BUDGET, seed=0)
        assert entry.speedup >= 1.0
        assert entry.incumbent_cycles <= entry.default_cycles

    def test_persists_and_recalls(self, graph, tmp_path):
        store = TunedConfigStore(tmp_path)
        entry = tune(graph, budget=BUDGET, seed=0, store=store)
        assert len(store) == 1
        again = tune(graph, budget=BUDGET, seed=0, store=store)
        assert again == entry

    def test_store_hit_costs_zero_simulator_work(self, graph, tmp_path,
                                                 monkeypatch):
        store = TunedConfigStore(tmp_path)
        entry = tune(graph, budget=BUDGET, seed=0, store=store)

        import repro.tuning.tuner as tuner_mod

        def boom(*a, **k):  # pragma: no cover - must never run
            raise AssertionError("store hit ran the simulator")

        monkeypatch.setattr(tuner_mod, "gmbe_gpu", boom)
        assert tune(graph, budget=BUDGET, seed=0, store=store) == entry

    def test_force_retunes_over_a_hit(self, graph, tmp_path, monkeypatch):
        store = TunedConfigStore(tmp_path)
        tune(graph, budget=BUDGET, seed=0, store=store)

        import repro.tuning.tuner as tuner_mod

        calls = []
        real = tuner_mod.gmbe_gpu

        def spy(*a, **k):
            calls.append(1)
            return real(*a, **k)

        monkeypatch.setattr(tuner_mod, "gmbe_gpu", spy)
        tune(graph, budget=BUDGET, seed=0, store=store, force=True)
        assert calls  # the search really re-ran

    def test_budget_coercion(self, graph):
        entry = tune(graph, budget=4, seed=0)
        assert entry.provenance["budget"]["max_trials"] == 4
        with pytest.raises(TypeError, match="budget"):
            tune(graph, budget=2.5)

    def test_rejects_bad_gpu_count(self, graph):
        with pytest.raises(ValueError):
            tune(graph, budget=BUDGET, n_gpus=0)

    def test_winning_config_reproduces_reference_set(self, graph):
        from repro.core import BicliqueCollector, oombea
        from repro.gmbe import gmbe_gpu

        entry = tune(graph, budget=BUDGET, seed=0)
        col = BicliqueCollector()
        gmbe_gpu(graph, col, config=entry.config)
        ref = BicliqueCollector()
        oombea(graph, ref)
        assert col.as_set() == ref.as_set()

    def test_provenance_records_the_search(self, graph):
        entry = tune(graph, budget=BUDGET, seed=0)
        prov = entry.provenance
        assert prov["features"] == compute_features(graph).to_dict()
        assert prov["candidates"] >= 1
        assert len(prov["history"]) == prov["candidates"]
        assert all("assignment" in t and "cycles" in t
                   for t in prov["history"])

    def test_telemetry_counters(self, graph, tmp_path):
        from repro.telemetry import Telemetry

        store = TunedConfigStore(tmp_path)
        tel = Telemetry()
        entry = tune(graph, budget=BUDGET, seed=0, store=store,
                     telemetry=tel)
        snap = tel.registry.snapshot()
        assert snap["tune.trials"] == entry.trials
        assert snap["tune.store.misses"] == 1
        assert snap["tune.incumbent_cycles"] == entry.incumbent_cycles
        tune(graph, budget=BUDGET, seed=0, store=store, telemetry=tel)
        assert tel.registry.snapshot()["tune.store.hits"] == 1


class TestResolveConfig:
    def test_miss_falls_back_to_base(self, graph, tmp_path):
        store = TunedConfigStore(tmp_path)
        base = GMBEConfig(bound_height=4)
        cfg, hit = resolve_config(graph, store=store, base=base)
        assert not hit and cfg == base
        cfg, hit = resolve_config(graph, store=store)
        assert not hit and cfg == DEFAULT_CONFIG
        assert len(store) == 0  # plain resolve never tunes

    def test_tune_on_miss_persists_then_hits(self, graph, tmp_path):
        store = TunedConfigStore(tmp_path)
        cfg, hit = resolve_config(
            graph, store=store, tune_on_miss=True, budget=BUDGET
        )
        assert not hit and len(store) == 1
        cfg2, hit2 = resolve_config(graph, store=store)
        assert hit2 and cfg2 == cfg

    def test_hit_costs_zero_simulator_work(self, graph, tmp_path,
                                           monkeypatch):
        store = TunedConfigStore(tmp_path)
        entry = tune(graph, budget=BUDGET, seed=0, store=store)

        import repro.tuning.tuner as tuner_mod

        monkeypatch.setattr(
            tuner_mod, "gmbe_gpu",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError()),
        )
        cfg, hit = resolve_config(graph, store=store)
        assert hit and cfg == entry.config
