"""Failure-injection tests: errors must propagate cleanly, not corrupt state."""

import numpy as np
import pytest

from repro.core import BicliqueCollector, oombea
from repro.gmbe import GMBEConfig, gmbe_gpu, gmbe_host
from repro.graph import random_bipartite


class Boom(RuntimeError):
    pass


class ExplodingSink:
    """Raises after ``fuse`` bicliques."""

    def __init__(self, fuse: int) -> None:
        self.fuse = fuse
        self.seen = 0

    def __call__(self, left, right) -> None:
        self.seen += 1
        if self.seen >= self.fuse:
            raise Boom(f"sink exploded after {self.seen}")


@pytest.fixture
def graph():
    return random_bipartite(30, 20, 0.3, seed=42)


class TestSinkFailures:
    def test_host_propagates_sink_error(self, graph):
        with pytest.raises(Boom):
            gmbe_host(graph, ExplodingSink(5))

    def test_gpu_propagates_sink_error(self, graph):
        with pytest.raises(Boom):
            gmbe_gpu(graph, ExplodingSink(5))

    def test_baseline_propagates_sink_error(self, graph):
        with pytest.raises(Boom):
            oombea(graph, ExplodingSink(5))

    def test_clean_rerun_after_failure(self, graph):
        """A failed run must not poison later runs (no shared state)."""
        expected = gmbe_host(graph).n_maximal
        with pytest.raises(Boom):
            gmbe_host(graph, ExplodingSink(3))
        col = BicliqueCollector()
        assert gmbe_host(graph, col).n_maximal == expected
        assert col.count == expected

    def test_partial_output_before_failure(self, graph):
        sink = ExplodingSink(7)
        with pytest.raises(Boom):
            gmbe_gpu(graph, sink)
        assert sink.seen == 7


class TestBadInputs:
    def test_non_integer_biadjacency_values_tolerated(self):
        # Nonzero floats are edges; from_biadjacency uses nonzero().
        from repro.graph import BipartiteGraph

        m = np.array([[0.5, 0.0], [0.0, 2.0]])
        g = BipartiteGraph.from_biadjacency(m)
        assert g.n_edges == 2

    def test_kernel_rejects_zero_gpus(self, graph):
        with pytest.raises(ValueError):
            gmbe_gpu(graph, n_gpus=0)

    def test_config_rejects_bad_combo_early(self):
        with pytest.raises(ValueError):
            GMBEConfig(scheduling="task", bound_height=-5)
