"""Tests for (p,q)-biclique counting."""

from itertools import combinations
from math import comb

import numpy as np
import pytest

from repro.core import sets
from repro.core.counting import (
    codegree_histogram,
    count_bicliques_pq,
    count_butterflies,
)
from repro.graph import BipartiteGraph, complete_bipartite, crown_graph, random_bipartite


def brute_count_pq(g: BipartiteGraph, p: int, q: int) -> int:
    total = 0
    for us in combinations(range(g.n_u), p):
        common = g.neighbors_u(us[0])
        for u in us[1:]:
            common = sets.intersect(common, g.neighbors_u(u))
        total += comb(len(common), q)
    return total


class TestButterflies:
    def test_complete_graph_formula(self):
        # K_{m,n} has C(m,2)*C(n,2) butterflies
        for m, n in ((3, 3), (4, 5), (2, 6)):
            g = complete_bipartite(m, n)
            assert count_butterflies(g) == comb(m, 2) * comb(n, 2)

    def test_single_butterfly(self):
        g = BipartiteGraph.from_edges(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)])
        assert count_butterflies(g) == 1

    def test_no_butterflies_in_tree(self):
        g = BipartiteGraph.from_edges(3, 2, [(0, 0), (1, 0), (2, 1)])
        assert count_butterflies(g) == 0

    def test_matches_bruteforce_random(self):
        for seed in range(5):
            g = random_bipartite(10, 9, 0.4, seed=seed)
            assert count_butterflies(g) == brute_count_pq(g, 2, 2)

    def test_side_symmetry(self):
        g = random_bipartite(8, 12, 0.35, seed=3)
        assert count_butterflies(g) == count_butterflies(g.swapped())


class TestCountPQ:
    def test_edges_case(self):
        g = random_bipartite(7, 7, 0.5, seed=1)
        assert count_bicliques_pq(g, 1, 1) == g.n_edges

    def test_p1_counts_stars(self):
        g = random_bipartite(7, 7, 0.5, seed=2)
        want = sum(comb(int(d), 3) for d in g.degrees_u)
        assert count_bicliques_pq(g, 1, 3) == want

    def test_q1_counts_costars(self):
        g = random_bipartite(7, 7, 0.5, seed=2)
        assert count_bicliques_pq(g, 3, 1) == brute_count_pq(g, 3, 1)

    @pytest.mark.parametrize("p,q", [(2, 2), (2, 3), (3, 2), (3, 3), (4, 2)])
    def test_matches_bruteforce(self, p, q):
        for seed in range(3):
            g = random_bipartite(9, 8, 0.45, seed=seed)
            assert count_bicliques_pq(g, p, q) == brute_count_pq(g, p, q), (
                seed, p, q,
            )

    def test_crown(self):
        # crown S_4^0: complete K44 minus perfect matching
        g = crown_graph(4)
        assert count_bicliques_pq(g, 2, 2) == brute_count_pq(g, 2, 2)

    def test_invalid_pq(self, paper_graph):
        with pytest.raises(ValueError):
            count_bicliques_pq(paper_graph, 0, 2)

    def test_butterflies_equal_22(self, paper_graph):
        assert count_bicliques_pq(paper_graph, 2, 2) == count_butterflies(
            paper_graph
        )


class TestHistogram:
    def test_complete(self):
        g = complete_bipartite(3, 4)
        hist = codegree_histogram(g)
        assert hist == {4: 3}  # C(3,2) U-pairs each sharing all 4

    def test_empty(self):
        g = BipartiteGraph.from_edges(3, 3, [])
        assert codegree_histogram(g) == {}
