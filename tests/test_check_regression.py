"""Tests for the perf-gate snapshot validation in check_regression.py."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def gate_mod():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        spec = importlib.util.spec_from_file_location(
            "check_regression", BENCH_DIR / "check_regression.py"
        )
        mod = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = mod  # dataclasses needs the module findable
        spec.loader.exec_module(mod)
        yield mod
    finally:
        sys.modules.pop(spec.name, None)
        sys.path.remove(str(BENCH_DIR))


class TestLoadSnapshot:
    def test_missing_file_names_the_fix(self, gate_mod, tmp_path):
        with pytest.raises(gate_mod.SnapshotError, match="--update"):
            gate_mod.load_snapshot(tmp_path / "nope.json", "speedup")

    def test_corrupt_json_is_not_a_traceback(self, gate_mod, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("{not json")
        with pytest.raises(gate_mod.SnapshotError, match="not valid JSON"):
            gate_mod.load_snapshot(path, "speedup")

    def test_missing_metric(self, gate_mod, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"other": 1.0}))
        with pytest.raises(gate_mod.SnapshotError, match="speedup"):
            gate_mod.load_snapshot(path, "speedup")

    def test_non_numeric_metric(self, gate_mod, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"speedup": "fast"}))
        with pytest.raises(gate_mod.SnapshotError, match="must be a number"):
            gate_mod.load_snapshot(path, "speedup")

    def test_valid_snapshot_roundtrip(self, gate_mod, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"speedup": 3.5}))
        assert gate_mod.load_snapshot(path, "speedup") == 3.5


class TestMainErrors:
    def test_unknown_gate_exits_nonzero(self, gate_mod, capsys):
        assert gate_mod.main(["--only", "nonsense"]) == 2
        assert "unknown gate" in capsys.readouterr().err

    def test_only_without_name_exits_nonzero(self, gate_mod, capsys):
        assert gate_mod.main(["--only"]) == 2
        assert "--only requires" in capsys.readouterr().err

    def test_missing_snapshot_fails_without_running_bench(
        self, gate_mod, capsys, monkeypatch
    ):
        gate = gate_mod.GATES[0]
        monkeypatch.setattr(
            gate_mod,
            "GATES",
            (
                gate_mod.Gate(
                    name=gate.name,
                    path=Path("/nonexistent/BENCH.json"),
                    metric=gate.metric,
                    run=lambda: pytest.fail("bench must not run"),
                    tolerance=gate.tolerance,
                    floor=gate.floor,
                ),
            ),
        )
        assert gate_mod.main([]) == 1
        err = capsys.readouterr().err
        assert "does not exist" in err and "--update" in err
