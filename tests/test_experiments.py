"""Smoke tests for the per-figure experiment drivers at tiny scale.

These verify driver mechanics (structures, invariants, printers); the
full-scale shape claims live in ``benchmarks/``.
"""

import pytest

from repro.bench import (
    clear_cache,
    experiment_fig6,
    experiment_fig7,
    experiment_fig8,
    experiment_fig9,
    experiment_fig10,
    experiment_fig11,
    experiment_fig12,
    experiment_fig13,
    experiment_table1,
    experiment_table2,
    print_fig6,
    print_fig7,
    print_fig8,
    print_fig9,
    print_fig10,
    print_fig11,
    print_fig12,
    print_fig13,
    print_table1,
    print_table2,
)

SCALE = 0.12
CODES = ["Mti", "YG"]


@pytest.fixture(scope="module", autouse=True)
def isolated_cache():
    clear_cache()
    yield
    clear_cache()


class TestTable1:
    def test_rows(self):
        rows = experiment_table1(scale=SCALE, codes=CODES)
        assert [r.code for r in rows] == CODES
        assert all(r.n_maximal > 0 for r in rows)
        assert print_table1(rows)


class TestFig6:
    def test_structure(self):
        res = experiment_fig6(
            scale=SCALE, codes=CODES, algorithms=["ooMBEA", "ParMBE", "GMBE"]
        )
        for code in CODES:
            assert set(res.seconds[code]) == {"ooMBEA", "ParMBE", "GMBE"}
            assert res.speedup_vs_best_cpu(code) > 0
        assert print_fig6(res)


class TestFig7:
    def test_paper_source(self):
        rows = experiment_fig7(codes=["BX"])
        assert rows[0].naive_bytes > rows[0].reuse_bytes
        assert print_fig7(rows)

    def test_analog_source(self):
        rows = experiment_fig7(source="analog", scale=SCALE, codes=CODES)
        assert len(rows) == 2

    def test_bad_source(self):
        with pytest.raises(ValueError):
            experiment_fig7(source="nope")


class TestFig8:
    def test_variants(self):
        res = experiment_fig8(scale=SCALE, codes=["YG"])
        per = res.seconds["YG"]
        assert set(per) == {"GMBE", "GMBE-w/o_PRUNE", "GMBE-WARP", "GMBE-BLOCK"}
        assert res.speedup("YG", "GMBE-WARP") > 0
        assert print_fig8(res)


class TestFig9:
    def test_curves(self):
        curves = experiment_fig9(scale=SCALE, codes=["YG"], n_samples=30)
        assert len(curves) == 3
        for c in curves:
            assert len(c.times_s) == len(c.active_sms) == 30
            assert 0.0 <= c.tail_idle_fraction() <= 1.0
        assert print_fig9(curves)


class TestSweeps:
    def test_fig10(self):
        res = experiment_fig10(scale=SCALE, codes=["YG"], grid=[(20, 1500), (40, 3500)])
        assert len(res.seconds["YG"]) == 2
        assert res.best_config("YG") in {(20, 1500), (40, 3500)}

    def test_fig10_printer_full_grid(self):
        res = experiment_fig10(scale=SCALE, codes=["YG"])
        assert print_fig10(res)
        assert isinstance(res.default_within_factor("YG"), bool)

    def test_fig11(self):
        res = experiment_fig11(scale=SCALE, codes=["YG"], grid=[8, 16])
        assert set(res.seconds["YG"]) == {8, 16}
        assert res.best_warps("YG") in (8, 16)

    def test_fig12(self):
        res = experiment_fig12(scale=SCALE, codes=["YG"])
        assert set(res.seconds["YG"]) == {"A100", "V100", "2080Ti"}
        assert print_fig12(res)

    def test_fig13(self):
        rows = experiment_fig13(scale=SCALE, codes=["YG"], gpu_counts=[1, 2])
        assert [r.n_gpus for r in rows] == [1, 2]
        assert all(r.total_s > 0 for r in rows)
        assert all(len(r.per_gpu_s) == r.n_gpus for r in rows)
        assert print_fig13(rows)
