"""Tests for the brute-force reference oracle itself."""

import pytest

from repro.core import Biclique, reference_mbe, verify_biclique
from repro.graph import (
    BipartiteGraph,
    complete_bipartite,
    crown_graph,
    random_bipartite,
)


class TestKnownGraphs:
    def test_paper_graph_has_six(self, paper_graph):
        found = reference_mbe(paper_graph)
        assert len(found) == 6
        # Fig. 1's bicliques, in 0-based indices:
        expected = {
            Biclique.make([0, 1], [0, 1, 2]),        # {u1,u2} x {v1,v2,v3}
            Biclique.make([1], [0, 1, 2, 3]),        # {u2} x {v1..v4}
            Biclique.make([0, 1, 2, 3], [1]),        # {u1..u4} x {v2}
            Biclique.make([0, 1, 3], [1, 2]),        # {u1,u2,u4} x {v2,v3}
            Biclique.make([1, 3], [1, 2, 3]),        # {u2,u4} x {v2,v3,v4}
            Biclique.make([1, 3, 4], [3]),           # {u2,u4,u5} x {v4}
        }
        assert found == expected

    def test_complete(self):
        assert len(reference_mbe(complete_bipartite(4, 6))) == 1

    def test_perfect_matching(self):
        g = BipartiteGraph.from_edges(4, 4, [(i, i) for i in range(4)])
        found = reference_mbe(g)
        assert len(found) == 4
        assert all(len(b.left) == len(b.right) == 1 for b in found)

    def test_star(self):
        g = BipartiteGraph.from_edges(5, 1, [(u, 0) for u in range(5)])
        assert reference_mbe(g) == {Biclique.make(range(5), [0])}

    def test_crown_counts(self):
        for n in (2, 3, 4):
            assert len(reference_mbe(crown_graph(n))) == 2**n - 2

    def test_empty_graph(self):
        g = BipartiteGraph.from_edges(3, 3, [])
        assert reference_mbe(g) == set()

    def test_path(self, tiny_path):
        assert reference_mbe(tiny_path) == {
            Biclique.make([0, 1], [0]),
            Biclique.make([1], [0, 1]),
        }

    def test_side_limit_enforced(self):
        g = BipartiteGraph.from_edges(30, 30, [(i, i) for i in range(30)])
        with pytest.raises(ValueError):
            reference_mbe(g)

    def test_swaps_to_smaller_side(self):
        # |V| = 25 > limit but |U| = 3 is fine after the internal swap.
        g = complete_bipartite(3, 25)
        assert len(reference_mbe(g)) == 1


class TestOracleOutputsAreValid:
    def test_all_outputs_maximal_bicliques(self):
        for seed in range(3):
            g = random_bipartite(10, 8, 0.35, seed=seed)
            for b in reference_mbe(g):
                is_bc, is_max = verify_biclique(g, b.left, b.right)
                assert is_bc and is_max

    def test_no_maximal_biclique_missed(self):
        """Every closed pair found by scanning all L-subsets is reported."""
        from itertools import combinations

        import numpy as np

        from repro.core import sets

        g = random_bipartite(7, 7, 0.4, seed=9)
        found = reference_mbe(g)
        for k in range(1, 8):
            for combo in combinations(range(7), k):
                l_arr = np.array(combo)
                r = g.neighbors_u(int(l_arr[0]))
                for u in l_arr[1:]:
                    r = sets.intersect(r, g.neighbors_u(int(u)))
                if len(r) == 0:
                    continue
                l_closed = g.neighbors_v(int(r[0]))
                for v in r[1:]:
                    l_closed = sets.intersect(l_closed, g.neighbors_v(int(v)))
                if np.array_equal(l_closed, l_arr):
                    assert Biclique.make(l_arr, r) in found


class TestVerifyBiclique:
    def test_valid_maximal(self, paper_graph):
        assert verify_biclique(paper_graph, [0, 1], [0, 1, 2]) == (True, True)

    def test_valid_non_maximal(self, paper_graph):
        assert verify_biclique(paper_graph, [0], [0, 1]) == (True, False)

    def test_not_biclique(self, paper_graph):
        assert verify_biclique(paper_graph, [0, 4], [0])[0] is False

    def test_empty_sides_rejected(self, paper_graph):
        assert verify_biclique(paper_graph, [], [0])[0] is False
