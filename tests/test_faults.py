"""Tests for deterministic fault injection and scheduler recovery.

Three layers:

1. :class:`FaultPlan` — seeded determinism, one-draw-per-consult
   cursor accounting, state round-trip, the ``max_faults`` cap, and
   :class:`ReplayFaultPlan` re-firing a recorded log exactly;
2. :class:`FaultLog` — save/load round-trip and counts;
3. the persistent-thread scheduler under injected faults — warp hangs
   requeue, SM crashes kill the SM and displace its local queue, queue
   drops are recovered by the orphan sweep, and the retry budget turns
   repeated failures into ``tasks_lost`` instead of livelock.

The end-to-end guarantee (faulty enumeration is bit-identical to the
fault-free run) lives in ``tests/test_properties.py``.
"""

import pytest

from repro.gmbe import GMBEConfig, gmbe_gpu
from repro.gpusim import (
    DeviceSpec,
    ExecOutcome,
    FaultLog,
    FaultPlan,
    PersistentThreadScheduler,
    ReplayFaultPlan,
    replay_plan,
)
from repro.graph import random_bipartite

TINY = DeviceSpec(
    "tiny",
    n_sms=2,
    global_mem_bytes=1 << 30,
    clock_hz=1e9,
    warps_per_sm=2,
    local_queue_cycles=0,
    global_queue_cycles=0,
)


def make_roots(costs_and_tasks):
    def gen():
        yield from costs_and_tasks

    return gen()


# ----------------------------------------------------------------------
# FaultPlan determinism
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(7, p_warp_hang=0.3, p_queue_drop=0.2)
        b = FaultPlan(7, p_warp_hang=0.3, p_queue_drop=0.2)
        seq_a = [a.at_execute() for _ in range(50)] + [
            a.at_push() for _ in range(50)
        ]
        seq_b = [b.at_execute() for _ in range(50)] + [
            b.at_push() for _ in range(50)
        ]
        assert [(d.kind if d else None) for d in seq_a] == [
            (d.kind if d else None) for d in seq_b
        ]

    def test_different_seeds_differ(self):
        a = FaultPlan(1, p_warp_hang=0.5)
        b = FaultPlan(2, p_warp_hang=0.5)
        seq_a = [(d.kind if d else None) for d in (a.at_execute() for _ in range(100))]
        seq_b = [(d.kind if d else None) for d in (b.at_execute() for _ in range(100))]
        assert seq_a != seq_b

    def test_cursor_counts_every_consult(self):
        plan = FaultPlan(0, p_warp_hang=0.1)
        for _ in range(10):
            plan.at_execute()
        for _ in range(5):
            plan.at_push()
        assert plan.cursor == 15

    def test_zero_probability_plan_never_fires(self):
        plan = FaultPlan(0)
        assert all(plan.at_execute() is None for _ in range(200))
        assert all(plan.at_push() is None for _ in range(200))

    def test_state_roundtrip_continues_sequence(self):
        plan = FaultPlan(3, p_sm_crash=0.2, p_warp_hang=0.2, p_queue_drop=0.2)
        for _ in range(40):
            plan.at_execute()
        state = plan.state()
        resumed = FaultPlan.from_state(state)
        tail_a = [
            (d.kind if d else None) for d in (plan.at_execute() for _ in range(40))
        ]
        tail_b = [
            (d.kind if d else None)
            for d in (resumed.at_execute() for _ in range(40))
        ]
        assert tail_a == tail_b

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(0, p_warp_hang=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(0, p_sm_crash=0.9, p_warp_hang=0.9)

    def test_max_faults_cap(self):
        plan = FaultPlan(0, p_warp_hang=1.0, max_faults=3)
        fired = [d for d in (plan.at_execute() for _ in range(20)) if d]
        assert len(fired) == 3


class TestReplay:
    def test_replay_refires_recorded_log(self):
        from repro.gpusim.faults import FaultEvent

        plan = FaultPlan(5, p_warp_hang=0.3, p_queue_drop=0.2)
        fired = {}
        for _ in range(100):
            d = plan.at_execute()
            if d is not None:
                fired[plan.cursor] = d.kind
        # a replay plan keyed on the recorded cursors fires identically
        log = FaultLog(plan_state=plan.state())
        for cur, kind in fired.items():
            log.append(FaultEvent(
                cursor=cur, kind=kind, site="execute", time=0.0,
                device=0, sm=0, unit=0, lineage=None,
                detail={"fraction": 0.5},
            ))
        rp = ReplayFaultPlan(log)
        refired = {}
        for _ in range(100):
            d = rp.at_execute()
            if d is not None:
                refired[rp.cursor] = d.kind
        assert refired == fired

    def test_replay_plan_from_log(self):
        g = random_bipartite(20, 18, 0.3, seed=1)
        cfg = GMBEConfig(bound_height=2, bound_size=4, max_task_retries=10)
        plan = FaultPlan(2, p_warp_hang=0.1, p_queue_drop=0.1)
        res = gmbe_gpu(g, config=cfg, fault_plan=plan)
        log = res.extras["fault_log"]
        injected = [e for e in log if e.kind != "task_lost"]
        assert injected, "pick a seed that actually fires"
        res2 = gmbe_gpu(g, config=cfg, fault_plan=replay_plan(log))
        log2 = res2.extras["fault_log"]
        assert [(e.cursor, e.kind) for e in log2 if e.kind != "task_lost"] == [
            (e.cursor, e.kind) for e in injected
        ]
        assert res2.n_maximal == res.n_maximal


class TestFaultLogIO:
    def test_save_load_roundtrip(self, tmp_path):
        g = random_bipartite(20, 18, 0.3, seed=1)
        cfg = GMBEConfig(bound_height=2, bound_size=4, max_task_retries=10)
        res = gmbe_gpu(
            g, config=cfg,
            fault_plan=FaultPlan(2, p_warp_hang=0.1, p_queue_drop=0.1),
        )
        log = res.extras["fault_log"]
        path = tmp_path / "faults.json"
        log.save(path)
        loaded = FaultLog.load(path)
        assert len(loaded) == len(log)
        assert [(e.cursor, e.kind, e.lineage) for e in loaded] == [
            (e.cursor, e.kind, e.lineage) for e in log
        ]
        assert loaded.counts() == log.counts()

    def test_load_rejects_non_log(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            FaultLog.load(path)


# ----------------------------------------------------------------------
# Scheduler recovery semantics (synthetic tasks)
# ----------------------------------------------------------------------
class ScriptedPlan:
    """Fault plan stub firing a scripted decision per execute consult."""

    def __init__(self, script, pressure_factor=4.0, watchdog_cycles=50.0):
        self.script = list(script)
        self.cursor = 0
        self.pressure_factor = pressure_factor
        self.watchdog_cycles = watchdog_cycles

    def at_execute(self):
        self.cursor += 1
        if self.script:
            return self.script.pop(0)
        return None

    def at_push(self):
        self.cursor += 1
        return None

    def state(self):
        return {"type": "scripted", "cursor": self.cursor}


def _decision(kind):
    from repro.gpusim.faults import FaultDecision

    return FaultDecision(kind=kind, cursor=0, fraction=0.5)


class TestSchedulerRecovery:
    def _run(self, tasks, script, max_retries=3):
        executed = []

        def execute(task, dev):
            executed.append(task)
            return ExecOutcome(cycles=10.0)

        sched = PersistentThreadScheduler(
            [TINY], 2, make_roots([(0.0, t) for t in tasks]),
            execute,
            fault_plan=ScriptedPlan(script),
            lineage_of=lambda t: t,
            max_task_retries=max_retries,
        )
        return sched.run(), executed

    def test_warp_hang_requeues_and_completes(self):
        report, executed = self._run(["a", "b"], [_decision("warp_hang")])
        assert report.tasks_executed == 2
        assert report.tasks_requeued == 1
        assert report.tasks_lost == 0
        assert executed.count("a") + executed.count("b") == 2
        assert report.fault_log is not None
        assert report.fault_log.counts().get("warp_hang") == 1

    def test_warp_hang_charges_watchdog(self):
        report, _ = self._run(["solo"], [_decision("warp_hang")])
        # one hang (watchdog 50) + one clean execution (10)
        assert report.makespan_cycles >= 50.0

    def test_sm_crash_kills_sm_but_work_survives(self):
        report, executed = self._run(["a", "b", "c"], [_decision("sm_crash")])
        assert report.tasks_executed == 3  # every task still ran to completion
        assert report.fault_log.counts().get("sm_crash") == 1
        assert report.tasks_requeued >= 1  # the crashed task was re-homed

    def test_last_sm_never_crashes(self):
        single = DeviceSpec(
            "uni", n_sms=1, global_mem_bytes=1 << 30, clock_hz=1e9,
            warps_per_sm=1, local_queue_cycles=0, global_queue_cycles=0,
        )
        executed = []

        sched = PersistentThreadScheduler(
            [single], 1, make_roots([(0.0, "only")]),
            lambda t, d: (executed.append(t), ExecOutcome(cycles=1.0))[1],
            fault_plan=ScriptedPlan([_decision("sm_crash")]),
            lineage_of=lambda t: t,
        )
        report = sched.run()
        # crash on the sole surviving SM is suppressed: work completes
        assert report.tasks_executed == 1
        assert not report.fault_log.counts().get("sm_crash")

    def test_mem_pressure_slows_but_completes(self):
        report, executed = self._run(["x"], [_decision("mem_pressure")])
        assert report.tasks_executed == 1
        assert report.makespan_cycles >= 10.0 * 4.0  # pressure_factor
        assert report.fault_log.counts().get("mem_pressure") == 1

    def test_retry_budget_exhaustion_loses_task(self):
        script = [_decision("warp_hang")] * 10
        report, executed = self._run(["doomed"], script, max_retries=2)
        assert report.tasks_lost == 1
        assert report.tasks_executed == 0
        assert report.fault_log.counts().get("task_lost") == 1
        # 1 first attempt + 2 retries, all hung
        assert report.fault_log.counts().get("warp_hang") == 3

    def test_queue_drop_recovered_by_orphan_sweep(self):
        class DropFirstPush(ScriptedPlan):
            def __init__(self):
                super().__init__([])
                self.dropped = False

            def at_push(self):
                self.cursor += 1
                if not self.dropped:
                    self.dropped = True
                    return _decision("queue_drop")
                return None

        children_done = []

        def execute(task, dev):
            if task == "parent":
                return ExecOutcome(
                    cycles=5.0, children=[(1.0, "kid0"), (2.0, "kid1")]
                )
            children_done.append(task)
            return ExecOutcome(cycles=1.0)

        sched = PersistentThreadScheduler(
            [TINY], 2, make_roots([(0.0, "parent")]),
            execute,
            fault_plan=DropFirstPush(),
            lineage_of=lambda t: t,
        )
        report = sched.run()
        assert sorted(children_done) == ["kid0", "kid1"]
        counts = report.fault_log.counts()
        assert counts.get("queue_drop") == 1
        assert counts.get("requeue") == 1  # the recovery sweep re-enqueued it

    def test_fault_plan_requires_lineage(self):
        with pytest.raises(ValueError):
            PersistentThreadScheduler(
                [TINY], 2, make_roots([]),
                lambda t, d: ExecOutcome(cycles=1.0),
                fault_plan=FaultPlan(0),
            )

    def test_fault_free_plan_changes_nothing(self):
        tasks = [(0.0, f"t{i}") for i in range(6)]

        def execute(task, dev):
            return ExecOutcome(cycles=10.0)

        plain = PersistentThreadScheduler(
            [TINY], 2, make_roots(list(tasks)), execute
        ).run()
        robust = PersistentThreadScheduler(
            [TINY], 2, make_roots(list(tasks)), execute,
            fault_plan=FaultPlan(0),
            lineage_of=lambda t: t,
        ).run()
        assert robust.makespan_cycles == plain.makespan_cycles
        assert robust.tasks_executed == plain.tasks_executed
        assert robust.tasks_requeued == 0 and robust.tasks_lost == 0


# ----------------------------------------------------------------------
# End-to-end: faulty kernel runs stay bit-identical (fast spot check;
# the hypothesis sweep across scheduling modes is in test_properties)
# ----------------------------------------------------------------------
class TestKernelFaultEquivalence:
    def test_faulty_run_matches_fault_free(self):
        g = random_bipartite(25, 22, 0.25, seed=3)
        cfg = GMBEConfig(bound_height=2, bound_size=4, max_task_retries=10)
        base = []
        gmbe_gpu(g, lambda L, R: base.append((tuple(L), tuple(R))), config=cfg)
        for seed in (0, 1):
            plan = FaultPlan(
                seed, p_sm_crash=0.04, p_warp_hang=0.04,
                p_queue_drop=0.05, p_mem_pressure=0.05,
            )
            out = []
            res = gmbe_gpu(
                g, lambda L, R: out.append((tuple(L), tuple(R))),
                config=cfg, fault_plan=plan,
            )
            assert sorted(out) == sorted(base)
            assert len(out) == len(base)  # exactly once, not just same set
            assert res.extras["tasks_lost"] == 0

    def test_extras_surface_robustness_info(self):
        g = random_bipartite(15, 12, 0.3, seed=0)
        cfg = GMBEConfig(max_task_retries=5)
        res = gmbe_gpu(g, config=cfg, fault_plan=FaultPlan(0, p_warp_hang=0.2))
        for key in ("fault_log", "tasks_requeued", "tasks_lost", "halted",
                    "resumed", "tasks_executed_total"):
            assert key in res.extras
        assert res.extras["halted"] is False
        assert res.extras["resumed"] is False
