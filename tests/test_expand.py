"""Tests for node expansion and the Γ maximality check."""

import numpy as np

from repro.core import sets
from repro.core.bicliques import Counters
from repro.core.bitset import BitsetUniverse
from repro.core.expand import expand_node, gamma, gamma_matches
from repro.core.localcount import LocalCounter
from repro.graph import random_bipartite


class TestGamma:
    def test_paper_example(self, paper_graph):
        # Γ({u1, u2}) = {v1, v2, v3}
        assert gamma(paper_graph, np.array([0, 1])).tolist() == [0, 1, 2]

    def test_empty_left_gives_all_v(self, paper_graph):
        assert gamma(paper_graph, np.array([], dtype=np.int32)).tolist() == [0, 1, 2, 3]

    def test_singleton(self, paper_graph):
        assert gamma(paper_graph, np.array([4])).tolist() == [3]

    def test_counters_charged(self, paper_graph):
        c = Counters()
        gamma(paper_graph, np.array([0, 1, 3]), c)
        assert c.set_op_work > 0


class TestGammaMatches:
    def test_true_case(self, paper_graph):
        assert gamma_matches(paper_graph, np.array([0, 1]), 3)

    def test_false_case(self, paper_graph):
        assert not gamma_matches(paper_graph, np.array([0, 1]), 2)

    def test_early_abort_equals_full(self, paper_graph):
        for left in ([0], [0, 1], [1, 3], [0, 1, 2, 3]):
            arr = np.array(left)
            for rs in range(0, 5):
                expected = len(gamma(paper_graph, arr)) == rs
                assert gamma_matches(paper_graph, arr, rs) == expected

    def test_random_agreement(self):
        g = random_bipartite(14, 10, 0.4, seed=2)
        rng = np.random.default_rng(1)
        for _ in range(30):
            left = np.sort(rng.choice(14, size=rng.integers(1, 6), replace=False))
            gm = gamma(g, left)
            for rs in (0, len(gm) - 1, len(gm), len(gm) + 1):
                if rs < 0:
                    continue
                assert gamma_matches(g, left, rs) == (len(gm) == rs)


class TestExpandNode:
    def test_paper_node_p(self, paper_graph):
        """Traversing v1 from the root: L'={u1,u2}, absorbs v1,v2,v3,
        candidate v4 remains (Example 2.1)."""
        lc = LocalCounter(paper_graph)
        left = np.arange(5, dtype=np.int32)
        cands = np.arange(4, dtype=np.int32)
        exp = expand_node(paper_graph, lc, left, 0, cands)
        assert exp.left.tolist() == [0, 1]
        assert exp.absorbed.tolist() == [0, 1, 2]
        assert exp.new_candidates.tolist() == [3]
        assert exp.new_counts.tolist() == [1]

    def test_paper_node_s1_non_maximal(self, paper_graph):
        """Root traverses v3 after v1, v2 removed: R' misses v2 so the
        node is non-maximal (Example 2.1's s1)."""
        lc = LocalCounter(paper_graph)
        left = np.arange(5, dtype=np.int32)
        cands = np.array([2, 3], dtype=np.int32)  # v3, v4 remain
        exp = expand_node(paper_graph, lc, left, 2, cands)
        assert exp.left.tolist() == [0, 1, 3]
        r_size = len(exp.absorbed)
        assert not gamma_matches(paper_graph, exp.left, r_size)

    def test_empty_left_result(self):
        g = random_bipartite(4, 4, 0.0, seed=0)
        g2 = g  # no edges: any expansion gives empty left
        lc = LocalCounter(g2)
        exp = expand_node(
            g2, lc, np.arange(4, dtype=np.int32), 0, np.arange(4, dtype=np.int32)
        )
        assert len(exp.left) == 0
        assert len(exp.absorbed) == 0
        assert exp.all_counts.tolist() == [0, 0, 0, 0]

    def test_all_counts_alignment(self, paper_graph):
        lc = LocalCounter(paper_graph)
        left = np.arange(5, dtype=np.int32)
        cands = np.array([1, 2, 3], dtype=np.int32)
        exp = expand_node(paper_graph, lc, left, 1, cands)
        # all_counts aligned with input candidate order
        for i, v in enumerate(cands):
            expected = sets.intersect_size(
                paper_graph.neighbors_v(int(v)), exp.left
            )
            assert exp.all_counts[i] == expected

    def test_counters_accumulate(self, paper_graph):
        lc = LocalCounter(paper_graph)
        c = Counters()
        expand_node(
            paper_graph,
            lc,
            np.arange(5, dtype=np.int32),
            1,
            np.arange(4, dtype=np.int32),
            c,
        )
        assert c.set_op_work > 0
        assert c.simt_cycles > 0


class TestBitsetBackendEquivalence:
    """The packed-bitset path must return the exact same integers as the
    sorted-merge path for every expansion and maximality check."""

    @staticmethod
    def _full_universe(g):
        return BitsetUniverse.build(
            g,
            np.arange(g.n_u, dtype=np.int32),
            np.arange(g.n_v, dtype=np.int32),
        )

    def test_expand_node_matches_sorted(self):
        g = random_bipartite(30, 24, 0.3, seed=11)
        lc = LocalCounter(g)
        uni = self._full_universe(g)
        rng = np.random.default_rng(2)
        for _ in range(25):
            left = np.sort(
                rng.choice(30, size=int(rng.integers(1, 20)), replace=False)
            ).astype(np.int32)
            cands = np.sort(
                rng.choice(24, size=int(rng.integers(1, 15)), replace=False)
            ).astype(np.int32)
            v_prime = int(cands[int(rng.integers(0, len(cands)))])
            a = expand_node(g, lc, left, v_prime, cands)
            b = expand_node(g, lc, left, v_prime, cands, universe=uni)
            assert a.left.tolist() == b.left.tolist()
            assert a.absorbed.tolist() == b.absorbed.tolist()
            assert a.new_candidates.tolist() == b.new_candidates.tolist()
            assert a.new_counts.tolist() == b.new_counts.tolist()
            assert a.all_counts.tolist() == b.all_counts.tolist()
            assert b.left_mask is not None

    def test_gamma_and_matches_agree(self):
        g = random_bipartite(20, 16, 0.35, seed=12)
        uni = self._full_universe(g)
        rng = np.random.default_rng(3)
        for _ in range(25):
            left = np.sort(
                rng.choice(20, size=int(rng.integers(1, 8)), replace=False)
            ).astype(np.int32)
            gm_sorted = gamma(g, left)
            gm_bits = gamma(g, left, universe=uni)
            assert gm_sorted.tolist() == gm_bits.tolist()
            for rs in (0, len(gm_sorted), len(gm_sorted) + 1):
                assert gamma_matches(g, left, rs) == gamma_matches(
                    g, left, rs, universe=uni
                ), (left, rs)

    def test_bitset_charges_word_parallel(self):
        g = random_bipartite(30, 24, 0.3, seed=13)
        lc = LocalCounter(g)
        uni = self._full_universe(g)
        left = np.arange(30, dtype=np.int32)
        cands = np.arange(24, dtype=np.int32)
        cs, cb = Counters(), Counters()
        expand_node(g, lc, left, 0, cands, cs)
        expand_node(g, lc, left, 0, cands, cb, universe=uni)
        assert cb.set_op_work > 0
        # 30-bit universe packs into one word per row: far less modeled
        # work than gathering the full sorted adjacency.
        assert cb.set_op_work < cs.set_op_work
