"""Hypothesis property tests on the core enumeration invariants.

The big three, on arbitrary small bipartite graphs:

1. every reported pair is a biclique, maximal, and reported once;
2. all seven algorithm configurations report the identical set;
3. execution knobs that must not affect results (device, WarpPerSM,
   scheduling scheme, GPU count, split bounds) never change the count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BicliqueCollector,
    imbea,
    mbea,
    oombea,
    parmbe,
    pmbe,
    reference_mbe,
    verify_biclique,
)
from repro.gmbe import GMBEConfig, gmbe_gpu, gmbe_host
from repro.graph import BipartiteGraph

pytestmark = pytest.mark.slow  # deselect with -m "not slow"

MAX_U, MAX_V = 8, 7


@st.composite
def bipartite_graphs(draw):
    n_u = draw(st.integers(1, MAX_U))
    n_v = draw(st.integers(1, MAX_V))
    edges = draw(
        st.sets(
            st.tuples(st.integers(0, n_u - 1), st.integers(0, n_v - 1)),
            max_size=n_u * n_v,
        )
    )
    return BipartiteGraph.from_edges(n_u, n_v, list(edges))


@given(bipartite_graphs())
@settings(max_examples=60, deadline=None)
def test_outputs_are_maximal_bicliques_without_duplicates(g):
    col = BicliqueCollector()
    res = gmbe_host(g, col)
    assert len(col.bicliques) == len(col.as_set()) == res.n_maximal
    for b in col.bicliques:
        is_bc, is_max = verify_biclique(g, b.left, b.right)
        assert is_bc and is_max


@given(bipartite_graphs())
@settings(max_examples=40, deadline=None)
def test_all_algorithms_agree_with_oracle(g):
    ref = reference_mbe(g)
    for algo in (mbea, imbea, pmbe, oombea, parmbe, gmbe_host, gmbe_gpu):
        col = BicliqueCollector()
        algo(g, col)
        assert col.as_set() == ref, algo.__name__


@given(
    bipartite_graphs(),
    st.sampled_from(["task", "warp", "block"]),
    st.integers(1, 3),
    st.sampled_from([8, 16, 32]),
    st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_execution_knobs_never_change_results(g, scheduling, n_gpus, warps, prune):
    ref_count = gmbe_host(g).n_maximal
    cfg = GMBEConfig(
        scheduling=scheduling,
        warps_per_sm=warps,
        prune=prune,
        bound_height=2,
        bound_size=4,
    )
    res = gmbe_gpu(g, config=cfg, n_gpus=n_gpus)
    assert res.n_maximal == ref_count


@st.composite
def gmbe_configs(draw):
    """Any *valid* GMBEConfig the tuner's search space could emit —
    every knob free, including vertex ordering and the set backend."""
    return GMBEConfig(
        bound_height=draw(st.integers(1, 48)),
        bound_size=draw(st.integers(1, 6000)),
        warps_per_sm=draw(st.sampled_from([1, 8, 16, 24, 32])),
        prune=draw(st.booleans()),
        scheduling=draw(st.sampled_from(["task", "warp", "block"])),
        node_reuse=draw(st.booleans()),
        set_backend=draw(st.sampled_from(["auto", "sorted", "bitset"])),
        batch_tasks=draw(st.sampled_from(["off", "auto", 1, 2, 7, 64])),
        order=draw(st.sampled_from(["degree", "degeneracy", "none"])),
    )


@given(bipartite_graphs(), gmbe_configs())
@settings(max_examples=50, deadline=None)
def test_any_tunable_config_is_bit_identical(g, cfg):
    """The autotuner's contract: configuration may only ever change
    *speed* — every sampled valid config enumerates the exact set."""
    ref = reference_mbe(g)
    col = BicliqueCollector()
    gmbe_gpu(g, col, config=cfg)
    assert col.as_set() == ref
    col = BicliqueCollector()
    gmbe_host(g, col, config=cfg)
    assert col.as_set() == ref


@given(bipartite_graphs())
@settings(max_examples=30, deadline=None)
def test_counters_accounting_consistent(g):
    res = gmbe_host(g)
    c = res.counters
    assert c.maximal == res.n_maximal
    assert c.checks <= c.nodes_generated + res.n_maximal  # root tasks check-free
    assert c.set_op_work >= 0 and c.simt_cycles >= 0


@given(
    bipartite_graphs(),
    st.integers(0, 2**16),
    st.sampled_from(["task", "warp", "block"]),
)
@settings(max_examples=40, deadline=None)
def test_crash_equivalence_under_fault_injection(g, seed, scheduling):
    """Injected faults never change the reported biclique set.

    Aggressive per-consult probabilities (capped by ``max_faults`` so a
    pathological draw can't exhaust even a generous retry budget) across
    every scheduling scheme: the recovery path — lineage requeue plus the
    per-task emission ledger — must reproduce the fault-free output
    bit-identically, each biclique exactly once.
    """
    from repro.gpusim.faults import FaultPlan

    cfg = GMBEConfig(
        scheduling=scheduling,
        bound_height=2,
        bound_size=4,
        max_task_retries=50,
    )
    base = []
    gmbe_gpu(g, lambda L, R: base.append((tuple(L), tuple(R))), config=cfg)
    plan = FaultPlan(
        seed,
        p_sm_crash=0.10,
        p_warp_hang=0.10,
        p_queue_drop=0.10,
        p_mem_pressure=0.05,
        max_faults=64,
    )
    out = []
    res = gmbe_gpu(
        g, lambda L, R: out.append((tuple(L), tuple(R))),
        config=cfg, fault_plan=plan,
    )
    assert res.extras["tasks_lost"] == 0
    assert sorted(out) == sorted(base)
    assert len(out) == len(base)  # exactly once — no duplicate emissions


@given(bipartite_graphs())
@settings(max_examples=30, deadline=None)
def test_enumeration_invariant_under_relabeling(g):
    rng = np.random.default_rng(0)
    u_perm = rng.permutation(g.n_u)
    v_perm = rng.permutation(g.n_v)
    g2 = g.relabeled(u_perm=u_perm, v_perm=v_perm)
    assert gmbe_host(g).n_maximal == gmbe_host(g2).n_maximal
