"""Cross-process telemetry: capture, re-parenting, and the flight recorder.

The contract under test (docs/observability.md "Cross-process
telemetry"): a process-pool shard run with telemetry attached must
yield the *same* correlation surface as a thread-pool one — one
``trace_id``, one ``job_id``, worker ``sim.kernel`` spans grafted under
the coordinator's per-attempt ``shard.run``/``shard.retry`` spans, and
worker registries folded deterministically into the parent.  And when a
run degrades, the flight recorder must preserve the dead worker's last
heartbeat-flushed records — the black box a postmortem actually needs.

Process-spawning tests are marked ``slow`` like the rest of the
supervision suite; the picklable-shape and merge-determinism tests run
everywhere.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.gmbe import GMBEConfig
from repro.graph import BipartiteGraph, random_bipartite
from repro.parallel import ProcessWorkerPool, SupervisorPolicy
from repro.service import ServiceClient
from repro.sharding import DegradedShardRun, ShardCoordinator
from repro.telemetry import (
    FlightRecorder,
    MetricsRegistry,
    RingSink,
    Telemetry,
    TelemetrySnapshot,
    TraceContext,
    WorkerTelemetry,
    format_flight_record,
    load_flight_record,
    reparent_records,
    write_flight_record,
)
from repro.telemetry.remote import merge_metric_dumps

#: split-friendly bounds so worker traces carry real task traffic
CFG = GMBEConfig(bound_height=4, bound_size=32)


def small_graph() -> BipartiteGraph:
    edges = [(u, v) for u in range(12) for v in range(10) if (u + v) % 3 != 0]
    return BipartiteGraph.from_edges(12, 10, edges)


# ----------------------------------------------------------------------
# Picklable shapes
# ----------------------------------------------------------------------
class TestPicklableShapes:
    def test_trace_context_pickle_roundtrip(self):
        ctx = TraceContext(trace_id="t-1", parent_span_id="s-1", job_id=7)
        out = pickle.loads(pickle.dumps(ctx))
        assert out == ctx
        assert (out.trace_id, out.parent_span_id, out.job_id) == (
            "t-1", "s-1", 7
        )

    def test_snapshot_pickle_roundtrip(self):
        snap = TelemetrySnapshot(
            pid=1234, shard_id=2, attempt=3, seq=5, final=True,
            records=[{"type": "event", "name": "x"}],
            metrics={"a": {"kind": "counter", "data": 1}},
            dropped=4,
        )
        out = pickle.loads(pickle.dumps(snap))
        assert out.to_dict() == snap.to_dict()

    def test_worker_flush_is_incremental_and_reparentable(self):
        ctx = TraceContext(trace_id="trace-X", parent_span_id="parent-X",
                           job_id=42)
        worker = WorkerTelemetry(ctx, shard_id=1, attempt=2, capacity=64)
        with worker.telemetry.tracer.span("sim.kernel", shard=1):
            worker.telemetry.tracer.event("shard.worker_start", shard=1)
        first = worker.flush()
        assert first.records, "flush drained nothing"
        assert worker.flush(final=True).final is True
        # incremental: the second flush must not replay the first
        names = [r["name"] for r in first.records]
        assert "sim.kernel" in names and "shard.worker_start" in names

        rp = reparent_records(
            first.records, trace_id="trace-X", parent_span_id="parent-X",
            job_id=42, prefix="s1a2:",
        )
        for rec in rp:
            assert rec["trace_id"] == "trace-X"
            assert rec["job_id"] == 42
        roots = [r for r in rp if r.get("type") == "span"
                 and r["parent_id"] == "parent-X"]
        assert roots, "no worker root span grafted under the parent span"
        assert all(r["span_id"].startswith("s1a2:") for r in rp
                   if r.get("type") == "span")


# ----------------------------------------------------------------------
# Deterministic registry folding
# ----------------------------------------------------------------------
class TestMergeDeterminism:
    @staticmethod
    def _dump(counter: int, gauge: float, hist_samples) -> dict:
        reg = MetricsRegistry()
        reg.counter("sim.tasks.executed").add(counter)
        reg.gauge("sim.makespan_cycles").set(gauge)
        h = reg.histogram("shard.owned_roots")
        for s in hist_samples:
            h.record(s)
        return reg.dump()

    def test_fold_order_independent_after_sort(self):
        """The coordinator sorts snapshots by (shard, attempt) before
        folding — so whichever worker finished first, the fold sees the
        same sequence and lands the same registry."""
        keyed = {
            (0, 1): self._dump(10, 100.0, [1, 2]),
            (1, 1): self._dump(20, 200.0, [3]),
            (1, 2): self._dump(5, 50.0, [4, 5, 6]),
        }
        arrival_a = [(1, 2), (0, 1), (1, 1)]
        arrival_b = [(1, 1), (1, 2), (0, 1)]
        snaps = []
        for arrival in (arrival_a, arrival_b):
            reg = MetricsRegistry()
            merge_metric_dumps(
                reg, [keyed[k] for k in sorted(arrival)]
            )
            snaps.append(reg.snapshot())
        assert snaps[0] == snaps[1]
        assert snaps[0]["sim.tasks.executed"] == 35  # counters add
        assert snaps[0]["sim.makespan_cycles"] == 50.0  # gauge: last write

    def test_merge_is_exact_for_counters_and_histograms(self):
        reg = MetricsRegistry()
        merge_metric_dumps(reg, [self._dump(3, 1.0, [10, 20])] * 2)
        snap = reg.snapshot()
        assert snap["sim.tasks.executed"] == 6
        assert snap["shard.owned_roots"]["count"] == 4


# ----------------------------------------------------------------------
# Ring sink accounting + # HELP exposition
# ----------------------------------------------------------------------
class TestSinkAndExposition:
    def test_ring_drop_counting(self):
        ring = RingSink(capacity=4)
        for i in range(10):
            ring.emit({"type": "event", "name": f"e{i}"})
        assert ring.emitted == 10
        assert ring.dropped == 6
        assert len(ring) == 4
        assert [r["name"] for r in ring.records()] == ["e6", "e7", "e8", "e9"]
        drained = ring.drain()
        assert len(drained) == 4 and len(ring) == 0

    def test_ring_dropped_surfaces_as_gauge(self):
        ring = RingSink(capacity=2)
        tel = Telemetry(sinks=[ring])
        with tel.tracer.span("a"):
            for _ in range(5):
                tel.tracer.event("e")
        assert tel.snapshot()["metrics"]["telemetry.ring.dropped"] > 0

    def test_prometheus_help_lines(self):
        reg = MetricsRegistry()
        reg.counter(
            "supervisor.worker_deaths",
            description="workers that died and were respawned",
        ).add(2)
        text = reg.to_prometheus_text()
        assert "# HELP supervisor_worker_deaths" in text
        assert "# TYPE supervisor_worker_deaths counter" in text

    def test_service_metrics_carry_descriptions(self):
        from repro.service.metrics import DESCRIPTIONS, ServiceMetrics

        reg = MetricsRegistry()
        ServiceMetrics(reg)
        text = reg.to_prometheus_text()
        assert "# HELP service_jobs_submitted" in text
        # every described service name that registered got its HELP line
        for name in ("service.jobs.completed", "service.latency_ms"):
            assert name in DESCRIPTIONS


# ----------------------------------------------------------------------
# Flight record shape
# ----------------------------------------------------------------------
class TestFlightRecord:
    def test_build_write_load_format_roundtrip(self, tmp_path):
        rec = FlightRecorder(job_id=9, trace_id="t-9")
        rec.note_attempt(0, 1, status="ok", pid=111)
        rec.note_attempt(1, 1, status="error", error="boom", pid=222)
        rec.note_pool_event("worker_death", {"worker_id": 1, "pid": 222})
        rec.add_snapshot(
            TelemetrySnapshot(pid=222, shard_id=1, attempt=1, seq=0,
                              records=[{"type": "event",
                                        "name": "shard.worker_start"}]),
        )
        flight = rec.build("quarantine", quarantined=[1])
        assert flight["reason"] == "quarantine"
        assert flight["job_id"] == 9
        assert flight["attempts"]["1"][0]["status"] == "error"
        assert flight["workers"]["s1a1"]["flushes"] == 1
        assert flight["quarantined"] == [1]

        path = write_flight_record(str(tmp_path), flight)
        loaded = load_flight_record(path)
        assert loaded == json.loads(json.dumps(flight))  # JSON-clean
        text = format_flight_record(loaded)
        assert "quarantine" in text and "shard.worker_start" in text


# ----------------------------------------------------------------------
# Real process pool: one merged trace
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestProcessPoolTraceCorrelation:
    def test_worker_spans_reparented_under_one_trace(self):
        ring = RingSink(capacity=4096)
        tel = Telemetry(sinks=[ring])
        tel.tracer.default_job_id = 7  # what the broker stamps per job
        report = ShardCoordinator(
            small_graph(), 2, config=CFG, pool="process", telemetry=tel
        ).run()
        assert report.is_partial is False

        records = ring.records()
        spans = [r for r in records if r.get("type") == "span"]
        events = [r for r in records if r.get("type") == "event"]

        # one trace, one job — across the process boundary
        trace_ids = {r["trace_id"] for r in records if r.get("trace_id")}
        assert len(trace_ids) == 1
        assert {r["job_id"] for r in records} == {7}

        runs = {s["span_id"]: s for s in spans if s["name"] == "shard.run"}
        kernels = [s for s in spans if s["name"] == "sim.kernel"]
        assert len(runs) == 2 and len(kernels) == 2
        assert all(k["parent_id"] in runs for k in kernels), (
            "worker sim.kernel spans were not grafted under shard.run"
        )
        job_spans = [s for s in spans if s["name"] == "shard.job"]
        assert len(job_spans) == 1
        assert all(r["parent_id"] == job_spans[0]["span_id"]
                   for r in runs.values())

        starts = [e for e in events if e["name"] == "shard.worker_start"]
        assert {e["attrs"]["shard"] for e in starts} == {0, 1}
        assert all(e["trace_id"] == job_spans[0]["trace_id"] for e in starts)

        # worker registries folded into the parent
        metrics = tel.snapshot()["metrics"]
        assert metrics["shard.runs"] == 2
        assert metrics["sim.tasks.executed"] > 0
        assert metrics.get("telemetry.worker.dropped", 0) == 0

    def test_telemetry_does_not_change_the_answer(self):
        g = small_graph()
        plain = ShardCoordinator(g, 2, config=CFG, pool="process").run()
        traced = ShardCoordinator(
            g, 2, config=CFG, pool="process",
            telemetry=Telemetry(sinks=[RingSink()]),
        ).run()
        assert traced.bicliques == plain.bicliques


# ----------------------------------------------------------------------
# Chaos: the dead worker's last flush survives in the flight record
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestFlightRecorderUnderChaos:
    def test_partial_flush_lands_in_flight_record(self, tmp_path):
        """Shard 1's worker is SIGKILLed mid-enumeration on every
        attempt, well past several heartbeat intervals: the flight
        record must hold the records it flushed before dying, and the
        parent trace must show its attempts as error spans."""
        graph = random_bipartite(80, 64, 0.22, seed=7)
        ring = RingSink(capacity=8192)
        tel = Telemetry(sinks=[ring])
        pool = ProcessWorkerPool(
            2,
            policy=SupervisorPolicy(
                heartbeat_interval=0.05, heartbeat_timeout=10.0
            ),
        )
        try:
            partial = ShardCoordinator(
                graph, 2, config=CFG, pool=pool, telemetry=tel,
                chaos_kills={1: (99, 0.2)}, max_shard_attempts=2,
                flight_dir=str(tmp_path),
            ).run()
        finally:
            pool.shutdown()
        assert partial.is_partial is True
        assert partial.quarantined == [1]

        path = partial.extras["flight_path"]
        flight = load_flight_record(path)
        assert flight["reason"] == "quarantine"
        assert [a["status"] for a in flight["attempts"]["1"]] == [
            "error", "error"
        ]

        # the black box: both killed attempts left heartbeat flushes
        for key in ("s1a1", "s1a2"):
            entry = flight["workers"][key]
            assert entry["flushes"] >= 1, f"{key}: no flush before SIGKILL"
            assert entry["final_flush_seen"] is False
            names = [r["name"] for r in entry["records"]]
            assert "shard.worker_start" in names, (
                f"{key}: start event missing from flushed records"
            )
            assert isinstance(entry["pid"], int)
        # the surviving shard flushed its final snapshot normally
        assert flight["workers"]["s0a1"]["final_flush_seen"] is True

        # the dead attempts' records were also re-parented into the
        # live trace (metrics stay out — only final dumps merge)
        starts = [r for r in ring.records()
                  if r.get("type") == "event"
                  and r["name"] == "shard.worker_start"]
        assert {(e["attrs"]["shard"], e["attrs"]["attempt"])
                for e in starts} >= {(0, 1), (1, 1), (1, 2)}
        errors = [r for r in ring.records() if r.get("type") == "span"
                  and r["name"] in ("shard.run", "shard.retry")
                  and r.get("status") == "error"]
        assert len(errors) == 2

        assert "span_tree" in flight
        text = format_flight_record(flight)
        assert "quarantine" in text


# ----------------------------------------------------------------------
# Broker: degraded jobs write a flight record, health() answers
# ----------------------------------------------------------------------
def _chaos_shard_runner(job, graph, config, shards=1, shard_pool="thread",
                        checkpoint_path=None):
    """Service runner whose shard 1 dies past its retry budget."""
    res = ShardCoordinator(
        graph, 2, pool="process", config=CFG,
        chaos_kills={1: (99, 0.0)}, max_shard_attempts=2,
    ).run()
    if res.is_partial:
        raise DegradedShardRun(res)
    return res.bicliques


@pytest.mark.slow
class TestBrokerFlightAndHealth:
    def test_degraded_job_writes_flight_and_health_reports(self, tmp_path):
        client = ServiceClient(
            n_workers=1, telemetry=Telemetry(sinks=[RingSink()]),
            runner=_chaos_shard_runner, shard_pool="process",
            flight_dir=str(tmp_path),
        )
        try:
            res = client.submit(
                graph=small_graph(), algorithm="gmbe", shards=2
            )
            assert res.status == "degraded"
            health = client.health()
        finally:
            client.close()

        assert health["jobs"]["degraded"] == 1
        assert health["breaker"]["state"] in ("closed", "open", "half-open")
        assert health["queue"]["capacity"] > 0
        # the degraded run's pool stats surface per-worker liveness
        assert "workers" in health["shard_pool"]

        files = sorted(tmp_path.glob("flight-*.json"))
        assert len(files) == 1
        rec = load_flight_record(files[0])
        assert rec["reason"] == "degraded"
        assert rec["job_id"] is not None
        assert rec["breaker_opened_now"] is False
        assert sorted(rec["health"]["jobs"]) == [
            "completed", "degraded", "failed", "in_flight", "submitted"
        ]
