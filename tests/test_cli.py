"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph import write_edge_list


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "Mti"])
        assert args.algo == "gmbe" and args.device == "A100" and args.gpus == 1

    def test_bench_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Mti" in out and "GH" in out and "BookCrossing" in out

    def test_stats_on_dataset(self, capsys):
        assert main(["stats", "YG"]) == 0
        out = capsys.readouterr().out
        assert "node_buf" in out

    def test_stats_on_file(self, tmp_path, paper_graph, capsys):
        path = tmp_path / "g.tsv"
        write_edge_list(paper_graph, path)
        assert main(["stats", str(path)]) == 0

    def test_run_gmbe_on_file(self, tmp_path, paper_graph, capsys):
        path = tmp_path / "g.tsv"
        write_edge_list(paper_graph, path)
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "6 maximal bicliques" in out
        assert "simulated time" in out

    def test_run_cpu_algo_with_output(self, tmp_path, paper_graph, capsys):
        gpath = tmp_path / "g.tsv"
        opath = tmp_path / "out.txt"
        write_edge_list(paper_graph, gpath)
        rc = main(["run", str(gpath), "--algo", "oombea", "--output", str(opath)])
        assert rc == 0
        assert len(opath.read_text().strip().splitlines()) == 6

    def test_run_variants(self, tmp_path, paper_graph, capsys):
        gpath = tmp_path / "g.tsv"
        write_edge_list(paper_graph, gpath)
        for extra in (
            ["--scheduling", "warp"],
            ["--no-prune"],
            ["--gpus", "2"],
            ["--nodes", "2"],
            ["--algo", "gmbe-host"],
            ["--algo", "parmbe"],
        ):
            assert main(["run", str(gpath), *extra]) == 0
            assert "6 maximal bicliques" in capsys.readouterr().out

    def test_tune_then_hit_then_run_tuned(self, tmp_path, paper_graph,
                                          capsys):
        gpath = tmp_path / "g.tsv"
        write_edge_list(paper_graph, gpath)
        store = tmp_path / "store"
        rc = main(["tune", str(gpath), "--budget", "4",
                   "--store", str(store)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "simulator runs" in out
        # Second invocation recalls the entry with zero simulator work.
        assert main(["tune", str(gpath), "--budget", "4",
                     "--store", str(store)]) == 0
        assert "store hit" in capsys.readouterr().out
        # And `run --tuned` serves from the same store.
        rc = main(["run", str(gpath), "--tuned",
                   "--tuning-store", str(store)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tuned config: store hit" in out
        assert "6 maximal bicliques" in out

    def test_tune_no_store_and_json_out(self, tmp_path, paper_graph,
                                        capsys):
        gpath = tmp_path / "g.tsv"
        write_edge_list(paper_graph, gpath)
        jpath = tmp_path / "tuned.json"
        rc = main(["tune", str(gpath), "--budget", "4", "--no-store",
                   "--json", str(jpath)])
        assert rc == 0
        assert "stored:" not in capsys.readouterr().out
        data = jpath.read_text()
        assert "gmbe-tuned-config" in data

    def test_run_tuned_miss_falls_back(self, tmp_path, paper_graph,
                                       capsys):
        gpath = tmp_path / "g.tsv"
        write_edge_list(paper_graph, gpath)
        rc = main(["run", str(gpath), "--tuned",
                   "--tuning-store", str(tmp_path / "empty")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "store miss" in out and "6 maximal bicliques" in out

    def test_run_tuned_requires_gmbe(self, tmp_path, paper_graph):
        gpath = tmp_path / "g.tsv"
        write_edge_list(paper_graph, gpath)
        with pytest.raises(SystemExit):
            main(["run", str(gpath), "--algo", "oombea", "--tuned"])

    def test_bench_tiny(self, capsys):
        rc = main(
            ["bench", "table2", "--scale", "0.1", "--codes", "Mti"]
        )
        assert rc == 0
        assert "Table 2" in capsys.readouterr().out


class TestServe:
    def test_demo_session_shows_cache_hit(self, tmp_path, paper_graph, capsys):
        from repro.graph import write_edge_list

        gpath = tmp_path / "g.tsv"
        write_edge_list(paper_graph, gpath)
        rc = main(["serve", "--graph", str(gpath), "--algo", "oombea",
                   "--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cache=miss" in out and "cache=hit" in out
        assert "service metrics" in out

    def test_jobs_file_batch(self, tmp_path, paper_graph, capsys):
        import json

        from repro.graph import write_edge_list

        gpath = tmp_path / "g.tsv"
        write_edge_list(paper_graph, gpath)
        jobs_path = tmp_path / "jobs.jsonl"
        specs = [
            {"graph": str(gpath), "algorithm": "oombea"},
            {"graph": str(gpath), "algorithm": "oombea"},
            {"graph": str(gpath), "algorithm": "oombea",
             "min_left": 2, "min_right": 2},
        ]
        jobs_path.write_text("\n".join(json.dumps(s) for s in specs) + "\n")
        metrics_path = tmp_path / "metrics.json"
        rc = main(["serve", "--jobs", str(jobs_path), "--algo", "oombea",
                   "--metrics-out", str(metrics_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("ok") >= 3
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["submitted"] == 3
        # the duplicate either coalesced with its in-flight twin or hit
        counters = snapshot["counters"]
        assert counters["coalesced"] + counters["cache_hits"] >= 1

    def test_jobs_file_requires_graph_field(self, tmp_path):
        jobs_path = tmp_path / "jobs.jsonl"
        jobs_path.write_text('{"algorithm": "oombea"}\n')
        with pytest.raises(SystemExit):
            main(["serve", "--jobs", str(jobs_path)])
