"""Tests for the shared enumeration engine and its option knobs."""

import numpy as np
import pytest

from repro.core import BicliqueCollector, reference_mbe
from repro.core.bicliques import Counters
from repro.core.engine import EngineOptions, run_engine
from repro.graph import crown_graph, random_bipartite
from repro.graph.preprocess import prepare

ALL_OPTIONS = [
    EngineOptions("id", False, False),
    EngineOptions("id", True, False),
    EngineOptions("id", True, True),
    EngineOptions("count_asc", False, False),
    EngineOptions("count_asc", True, False),
    EngineOptions("count_asc", True, True),
    EngineOptions("count_desc", True, False),
    EngineOptions("count_desc", True, True),
]


@pytest.mark.parametrize("options", ALL_OPTIONS)
def test_all_option_combos_match_oracle(options):
    for seed in range(3):
        g = random_bipartite(11, 9, 0.35, seed=seed)
        ref = reference_mbe(g)
        prepared = prepare(g).graph
        ref_prepared = reference_mbe(prepared)
        col = BicliqueCollector()
        run_engine(prepared, col, options)
        assert col.as_set() == ref_prepared
        assert len(ref_prepared) == len(ref)


def test_crown_all_options():
    g = crown_graph(7)
    ref = reference_mbe(g)
    for options in ALL_OPTIONS:
        col = BicliqueCollector()
        run_engine(g, col, options)
        assert col.as_set() == ref


def test_prune_reduces_nodes():
    g = prepare(random_bipartite(40, 28, 0.25, seed=3)).graph
    c_off = run_engine(g, BicliqueCollector(), EngineOptions("id", True, False))
    c_on = run_engine(g, BicliqueCollector(), EngineOptions("id", True, True))
    assert c_on.nodes_generated <= c_off.nodes_generated
    assert c_on.pruned > 0
    assert c_on.maximal == c_off.maximal


def test_prune_reduces_nonmaximal_ratio():
    g = prepare(random_bipartite(50, 35, 0.22, seed=7)).graph
    c_off = run_engine(g, BicliqueCollector(), EngineOptions("count_asc", True, False))
    c_on = run_engine(g, BicliqueCollector(), EngineOptions("count_asc", True, True))
    assert c_on.nonmaximal_ratio() <= c_off.nonmaximal_ratio()


def test_absorb_reduces_or_equal_nodes():
    g = prepare(random_bipartite(30, 22, 0.35, seed=5)).graph
    plain = run_engine(g, BicliqueCollector(), EngineOptions("id", False, False))
    absorb = run_engine(g, BicliqueCollector(), EngineOptions("id", True, False))
    assert absorb.nodes_generated <= plain.nodes_generated


def test_counters_consistency():
    g = prepare(random_bipartite(20, 15, 0.3, seed=1)).graph
    col = BicliqueCollector()
    c = run_engine(g, col, EngineOptions("id", True, True))
    assert c.maximal == col.count
    assert c.checks == c.maximal + c.non_maximal
    assert c.nodes_generated == c.checks
    assert c.peak_stack_depth >= 1


def test_empty_graph_cases():
    from repro.graph import BipartiteGraph

    for g in (
        BipartiteGraph.from_edges(0, 0, []),
        BipartiteGraph.from_edges(3, 3, []),
    ):
        c = run_engine(g, BicliqueCollector(), EngineOptions())
        assert c.maximal == 0


def test_isolated_vertices_ignored():
    from repro.graph import BipartiteGraph

    g = BipartiteGraph.from_edges(4, 4, [(0, 0), (1, 0)])
    col = BicliqueCollector()
    run_engine(g, col, EngineOptions())
    assert col.count == 1
    assert col.bicliques[0].left == (0, 1)
