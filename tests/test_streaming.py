"""Tests for streaming maintenance of maximal bicliques."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import BipartiteGraph, random_bipartite
from repro.streaming import BicliqueMaintainer, DynamicBipartiteGraph


class TestDynamicGraph:
    def test_from_graph_roundtrip(self, paper_graph):
        d = DynamicBipartiteGraph.from_graph(paper_graph)
        assert d.n_edges == paper_graph.n_edges
        assert set(d.snapshot().edges()) == set(paper_graph.edges())

    def test_insert_delete(self):
        d = DynamicBipartiteGraph(2, 2)
        assert d.insert_edge(0, 1)
        assert not d.insert_edge(0, 1)  # duplicate
        assert d.has_edge(0, 1)
        assert d.delete_edge(0, 1)
        assert not d.delete_edge(0, 1)  # absent
        assert d.n_edges == 0

    def test_grows_vertex_ranges(self):
        d = DynamicBipartiteGraph()
        d.insert_edge(5, 3)
        assert d.n_u == 6 and d.n_v == 4

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            DynamicBipartiteGraph().insert_edge(-1, 0)

    def test_two_hop(self, paper_graph):
        d = DynamicBipartiteGraph.from_graph(paper_graph)
        assert d.two_hop_u(0) == {1, 2, 3}

    def test_update_listeners_fire_on_real_mutations_only(self):
        d = DynamicBipartiteGraph(2, 2)
        events = []
        d.add_update_listener(lambda op, u, v: events.append((op, u, v)))
        d.insert_edge(0, 1)
        d.insert_edge(0, 1)  # duplicate: no event
        d.delete_edge(0, 1)
        d.delete_edge(0, 1)  # absent: no event
        assert events == [("insert", 0, 1), ("delete", 0, 1)]

    def test_remove_update_listener(self):
        d = DynamicBipartiteGraph(2, 2)
        events = []
        fn = lambda op, u, v: events.append(op)  # noqa: E731
        d.add_update_listener(fn)
        d.remove_update_listener(fn)
        d.remove_update_listener(fn)  # double-remove is a no-op
        d.insert_edge(0, 0)
        assert events == []

    def test_induced_subgraph_mapping(self, paper_graph):
        d = DynamicBipartiteGraph.from_graph(paper_graph)
        sub, u_ids, v_ids = d.induced_subgraph([1, 3], [1, 3])
        assert sub.n_u == 2 and sub.n_v == 2
        for i in range(sub.n_u):
            for j in sub.neighbors_u(i):
                assert paper_graph.has_edge(int(u_ids[i]), int(v_ids[int(j)]))


class TestMaintainer:
    def test_initial_set_matches_enumeration(self, paper_graph):
        m = BicliqueMaintainer(paper_graph)
        assert m.bicliques == m.recompute()
        assert len(m) == 6

    def test_insert_edge_repairs(self, paper_graph):
        m = BicliqueMaintainer(paper_graph)
        m.insert_edge(4, 0)  # u5-v1
        assert m.bicliques == m.recompute()

    def test_delete_edge_repairs(self, paper_graph):
        m = BicliqueMaintainer(paper_graph)
        m.delete_edge(1, 1)  # u2-v2, a hub edge
        assert m.bicliques == m.recompute()

    def test_duplicate_and_absent_edges_noop(self, paper_graph):
        m = BicliqueMaintainer(paper_graph)
        before = m.bicliques
        assert not m.insert_edge(0, 0)   # exists
        assert not m.delete_edge(4, 0)   # absent
        assert m.bicliques == before

    def test_empty_start_build_up(self):
        m = BicliqueMaintainer()
        m.insert_edge(0, 0)
        m.insert_edge(1, 0)
        m.insert_edge(1, 1)
        assert m.bicliques == m.recompute()
        assert len(m) == 2  # ({0,1},{0}) and ({1},{0,1})

    def test_delete_to_empty(self):
        g = BipartiteGraph.from_edges(1, 1, [(0, 0)])
        m = BicliqueMaintainer(g)
        assert len(m) == 1
        m.delete_edge(0, 0)
        assert len(m) == 0

    def test_apply_stream(self, paper_graph):
        m = BicliqueMaintainer(paper_graph)
        m.apply([("+", 4, 0), ("-", 1, 2), ("+", 2, 3), ("-", 4, 0)])
        assert m.bicliques == m.recompute()
        assert m.stats["updates"] == 4

    def test_unknown_op(self, paper_graph):
        with pytest.raises(ValueError):
            BicliqueMaintainer(paper_graph).apply([("*", 0, 0)])

    def test_random_update_sequences(self):
        rng = np.random.default_rng(7)
        g = random_bipartite(10, 8, 0.3, seed=1)
        m = BicliqueMaintainer(g)
        for step in range(40):
            u = int(rng.integers(0, 10))
            v = int(rng.integers(0, 8))
            if m.graph.has_edge(u, v):
                m.delete_edge(u, v)
            else:
                m.insert_edge(u, v)
            assert m.bicliques == m.recompute(), f"diverged at step {step}"

    @given(st.integers(0, 100_000))
    @settings(max_examples=20, deadline=None)
    def test_property_random_streams(self, seed):
        rng = np.random.default_rng(seed)
        n_u, n_v = int(rng.integers(2, 8)), int(rng.integers(2, 7))
        g = random_bipartite(n_u, n_v, 0.3, seed=seed % 1000)
        m = BicliqueMaintainer(g)
        for _ in range(10):
            u = int(rng.integers(0, n_u))
            v = int(rng.integers(0, n_v))
            if m.graph.has_edge(u, v):
                m.delete_edge(u, v)
            else:
                m.insert_edge(u, v)
        assert m.bicliques == m.recompute()

    def test_locality_cheaper_than_recompute(self):
        """The point of maintenance: local node work per update is far
        below a full re-enumeration."""
        from repro.core import oombea as _oombea
        from repro.graph import power_law_bipartite

        g = power_law_bipartite(400, 200, 1800, seed=5)
        full_nodes = _oombea(g).counters.nodes_generated
        m = BicliqueMaintainer(g)
        # A fresh low-degree edge should touch a small neighborhood.
        m.insert_edge(399, 199)
        added = m.stats["added"]
        assert m.bicliques == m.recompute()
        assert added < full_nodes  # trivially true; the real check is time-based in benches
