"""Tests for the dataset registry and the paper's published statistics."""

import pytest

from repro.datasets import (
    DATASET_ORDER,
    DATASETS,
    LARGE_DATASETS,
    PAPER_MAX_BICLIQUES,
    PAPER_TABLE1,
    load,
)


class TestRegistry:
    def test_twelve_datasets_in_order(self):
        assert len(DATASET_ORDER) == 12
        assert DATASET_ORDER[0] == "Mti" and DATASET_ORDER[-1] == "GH"
        assert set(DATASET_ORDER) == set(DATASETS)

    def test_large_flags(self):
        assert LARGE_DATASETS == ["SO", "Pa", "IM", "EE", "BX", "GH"]

    def test_load_deterministic(self):
        g1 = load("Mti", cache=False)
        g2 = load("Mti", cache=False)
        assert set(g1.edges()) == set(g2.edges())

    def test_cache_returns_same_object(self):
        assert load("Mti") is load("Mti")

    def test_scale_shrinks(self):
        full = load("WA")
        small = load("WA", scale=0.25)
        assert small.n_u < full.n_u and small.n_edges < full.n_edges

    def test_unknown_code(self):
        with pytest.raises(KeyError):
            load("nope")

    def test_names_set(self):
        for code in DATASET_ORDER:
            assert load(code, scale=0.1, cache=False).name == code


class TestBicliqueCountOrdering:
    @pytest.mark.slow
    def test_counts_ascend_at_small_scale(self):
        """At reduced scale the exact ladder may wobble, but the coarse
        order (small < large group) must hold."""
        from repro.gmbe import gmbe_host

        counts = {
            code: gmbe_host(load(code, scale=0.25)).n_maximal
            for code in DATASET_ORDER
        }
        small = max(counts[c] for c in DATASET_ORDER[:3])
        big = min(counts[c] for c in ("EE", "BX", "GH"))
        assert big > small


class TestPaperStats:
    def test_all_rows_present(self):
        assert set(PAPER_TABLE1) == set(DATASET_ORDER)
        assert set(PAPER_MAX_BICLIQUES) == set(DATASET_ORDER)

    def test_counts_ascending_in_order(self):
        values = [PAPER_MAX_BICLIQUES[c] for c in DATASET_ORDER]
        assert values == sorted(values)

    def test_bookcrossing_row(self):
        bx = PAPER_TABLE1["BX"]
        assert (bx.max_deg_v, bx.max_two_hop_v) == (13601, 53915)

    def test_github_count(self):
        assert PAPER_MAX_BICLIQUES["GH"] == 55_346_398
