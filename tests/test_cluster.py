"""Tests for the distributed multi-machine extension."""

import pytest

from repro.core import BicliqueCollector, reference_mbe
from repro.gmbe import ClusterSpec, gmbe_cluster, gmbe_gpu
from repro.graph import power_law_bipartite, random_bipartite


class TestClusterSpec:
    def test_defaults(self):
        c = ClusterSpec()
        assert c.n_gpus == 2
        assert len(c.surcharges()) == 2

    def test_surcharges_local_vs_remote(self):
        c = ClusterSpec(n_nodes=3, gpus_per_node=2)
        s = c.surcharges()
        assert len(s) == 6
        assert s[0] == s[1] == c.local_pull_cycles
        assert all(x == c.remote_pull_cycles for x in s[2:])

    def test_batching_amortizes(self):
        c1 = ClusterSpec(claim_batch=1)
        c8 = ClusterSpec(claim_batch=8)
        assert c8.surcharges()[1] == pytest.approx(c1.surcharges()[1] / 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(claim_batch=0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_nodes", 0), ("n_nodes", -2), ("n_nodes", True),
            ("n_nodes", 1.5), ("gpus_per_node", 0), ("gpus_per_node", "2"),
            ("claim_batch", -1), ("claim_batch", False),
            ("local_pull_cycles", -1.0), ("local_pull_cycles", True),
            ("remote_pull_cycles", -5), ("remote_pull_cycles", "fast"),
        ],
    )
    def test_validation_names_offending_field_and_value(self, field, value):
        with pytest.raises(ValueError, match=field) as excinfo:
            ClusterSpec(**{field: value})
        # actionable: the message carries the rejected value too
        assert repr(value) in str(excinfo.value) or str(value) in str(
            excinfo.value
        )

    def test_validation_rejects_non_device(self):
        with pytest.raises(ValueError, match="device"):
            ClusterSpec(device="A100")

    def test_repr_exports_surcharge_breakdown(self):
        c = ClusterSpec(n_nodes=2, gpus_per_node=2, claim_batch=2)
        text = repr(c)
        # one entry per GPU, placed on its node, with the amortized cost
        assert "gpu0@node0=100" in text
        assert "gpu1@node0=100" in text
        assert "gpu2@node1=1000" in text
        assert "gpu3@node1=1000" in text
        assert "pull_surcharges=[" in text


class TestClusterExecution:
    def test_results_match_oracle(self):
        for seed in range(3):
            g = random_bipartite(12, 9, 0.35, seed=seed)
            col = BicliqueCollector()
            gmbe_cluster(g, col, cluster=ClusterSpec(n_nodes=2, gpus_per_node=2))
            assert col.as_set() == reference_mbe(g)

    def test_results_match_single_gpu(self):
        g = power_law_bipartite(250, 130, 1200, seed=21)
        single = gmbe_gpu(g)
        multi = gmbe_cluster(g, cluster=ClusterSpec(n_nodes=4, gpus_per_node=2))
        assert single.n_maximal == multi.n_maximal

    def test_per_node_times_reported(self):
        g = power_law_bipartite(150, 80, 700, seed=22)
        res = gmbe_cluster(g, cluster=ClusterSpec(n_nodes=3, gpus_per_node=1))
        assert len(res.extras["per_node_seconds"]) == 3
        assert res.extras["cluster"].n_nodes == 3

    def test_network_cost_slows_remote_heavy_cluster(self):
        """Same GPU count: all-local beats mostly-remote when the RTT is
        large and tasks are cheap."""
        g = power_law_bipartite(300, 160, 1500, seed=23)
        local = gmbe_cluster(
            g, cluster=ClusterSpec(n_nodes=1, gpus_per_node=4,
                                   remote_pull_cycles=500_000)
        )
        remote = gmbe_cluster(
            g, cluster=ClusterSpec(n_nodes=4, gpus_per_node=1,
                                   remote_pull_cycles=500_000)
        )
        assert local.sim_time <= remote.sim_time
        assert local.n_maximal == remote.n_maximal

    def test_batched_claims_recover_scaling(self):
        g = power_law_bipartite(300, 160, 1500, seed=24)
        slow = gmbe_cluster(
            g, cluster=ClusterSpec(n_nodes=4, remote_pull_cycles=200_000,
                                   claim_batch=1)
        )
        batched = gmbe_cluster(
            g, cluster=ClusterSpec(n_nodes=4, remote_pull_cycles=200_000,
                                   claim_batch=32)
        )
        assert batched.sim_time < slow.sim_time
        assert batched.n_maximal == slow.n_maximal
