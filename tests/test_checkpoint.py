"""Checkpoint/resume tests: snapshot format, writer, kernel round-trips.

The acceptance bar for resume is *bit-identical continuation*: killing a
run at an arbitrary task boundary and resuming from its checkpoint must
report exactly the biclique set of an uninterrupted run — each biclique
exactly once — and clean completion must remove the checkpoint file.
Corrupt, truncated, or mismatched checkpoints fail with actionable
errors, never tracebacks or silently-wrong output.
"""

import json
import random

import pytest

from repro.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    EmissionRecord,
    Snapshot,
    TaskRecord,
    load_checkpoint,
    save_checkpoint,
)
from repro.gmbe import GMBEConfig, gmbe_gpu
from repro.gpusim.device import V100
from repro.gpusim.faults import FaultPlan
from repro.graph import random_bipartite


def _snapshot(**over):
    base = dict(
        graph_fingerprint="f" * 64,
        config_signature=[("bound_height", 4)],
        device_name="A100",
        n_gpus=1,
        root_cursor=5,
        n_roots=10,
        tasks=[TaskRecord(lineage=(3,), left=[0], right=[1, 2],
                          cands=[4], counts=[2], needs_check=False)],
        emissions=[EmissionRecord(lineage=(1,), seq=0, left=[0], right=[1])],
        executed=[(1,)],
        counters={"maximal": 1},
        elapsed_cycles=12.5,
        tasks_executed=4,
        tasks_split=1,
    )
    base.update(over)
    return Snapshot(**base)


class TestSnapshotFormat:
    def test_json_roundtrip(self):
        snap = _snapshot()
        back = Snapshot.from_json(snap.to_json())
        assert back.graph_fingerprint == snap.graph_fingerprint
        assert back.root_cursor == 5 and back.n_roots == 10
        assert back.tasks[0].lineage == (3,)
        assert back.tasks[0].right == [1, 2]
        assert back.emissions[0].lineage == (1,)
        assert back.executed == [(1,)]
        assert back.counters == {"maximal": 1}
        assert back.elapsed_cycles == 12.5

    def test_atomic_save_load(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, _snapshot())
        assert not (tmp_path / "run.ckpt.tmp").exists()
        assert load_checkpoint(path).tasks_executed == 4

    def test_missing_file_is_actionable(self, tmp_path):
        with pytest.raises(CheckpointError, match="without --resume"):
            load_checkpoint(tmp_path / "never-written.ckpt")

    def test_truncated_json_is_actionable(self, tmp_path):
        path = tmp_path / "trunc.ckpt"
        path.write_text(_snapshot().to_json()[:50])
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            load_checkpoint(path)

    def test_wrong_kind_is_actionable(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(CheckpointError, match="not a GMBE checkpoint"):
            load_checkpoint(path)

    def test_wrong_version_is_actionable(self, tmp_path):
        data = json.loads(_snapshot().to_json())
        data["version"] = 999
        path = tmp_path / "v999.ckpt"
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="format version 999"):
            load_checkpoint(path)

    def test_missing_fields_are_actionable(self, tmp_path):
        data = json.loads(_snapshot().to_json())
        del data["root_cursor"]
        path = tmp_path / "partial.ckpt"
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="root_cursor"):
            load_checkpoint(path)

    def test_validate_against_wrong_graph(self):
        with pytest.raises(CheckpointError, match="different graph"):
            _snapshot().validate_against(
                graph_fingerprint="0" * 64,
                config_signature=[("bound_height", 4)],
                device_name="A100", n_gpus=1,
            )

    def test_validate_against_wrong_config_names_the_knob(self):
        with pytest.raises(CheckpointError, match="bound_height"):
            _snapshot().validate_against(
                graph_fingerprint="f" * 64,
                config_signature=[("bound_height", 8)],
                device_name="A100", n_gpus=1,
            )

    def test_validate_against_wrong_topology(self):
        with pytest.raises(CheckpointError, match="V100"):
            _snapshot().validate_against(
                graph_fingerprint="f" * 64,
                config_signature=[("bound_height", 4)],
                device_name="V100", n_gpus=1,
            )


class TestCheckpointWriter:
    def test_cadence(self, tmp_path):
        path = tmp_path / "w.ckpt"
        w = CheckpointWriter(path, every_tasks=3)
        built = []

        def build():
            built.append(1)
            return _snapshot()

        for done in range(1, 10):
            w.maybe_write(done, build)
        assert len(built) == 3  # at tasks 3, 6, 9
        assert w.writes == 3 and path.exists()

    def test_finalize_removes_file(self, tmp_path):
        path = tmp_path / "w.ckpt"
        w = CheckpointWriter(path, every_tasks=1)
        w.maybe_write(1, _snapshot)
        assert path.exists()
        w.finalize_success()
        assert not path.exists()

    def test_invalid_cadence(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointWriter(tmp_path / "x", every_tasks=0)


# ----------------------------------------------------------------------
# Kernel round-trips
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def graph():
    return random_bipartite(28, 24, 0.25, seed=11)


CFG = GMBEConfig(bound_height=2, bound_size=4, max_task_retries=10)


def _enumerate(graph, **kw):
    out = []
    res = gmbe_gpu(graph, lambda L, R: out.append((tuple(L), tuple(R))),
                   config=CFG, **kw)
    return res, out


class TestKernelResume:
    def test_kill_at_random_step_then_resume_is_identical(self, graph):
        _, base = _enumerate(graph)
        full = _enumerate(graph)[0]
        total_tasks = full.extras.get("report").tasks_executed
        rng = random.Random(0)
        for halt in sorted(rng.sample(range(1, max(total_tasks, 2)), 3)):
            import tempfile, os

            with tempfile.TemporaryDirectory() as d:
                ckpt = os.path.join(d, "kill.ckpt")
                r1, out1 = _enumerate(
                    graph, checkpoint_path=ckpt, checkpoint_every=1,
                    halt_after_tasks=halt,
                )
                assert r1.extras["halted"] is True
                assert os.path.exists(ckpt)
                r2, out2 = _enumerate(graph, checkpoint_path=ckpt, resume=True)
                assert r2.extras["resumed"] is True
                # bit-identical full result, each biclique exactly once
                assert sorted(out2) == sorted(base)
                assert len(out2) == len(set(out2)) == len(base)
                # prior progress is a subset, nothing re-emitted by run 1
                assert set(out1) <= set(out2)
                assert len(out1) == len(set(out1))
                # clean finish removes the checkpoint
                assert not os.path.exists(ckpt)

    def test_emission_count_monotone_across_halts(self, graph, tmp_path):
        _, base = _enumerate(graph)
        counts = []
        for halt in (1, 5, 20, 60):
            ckpt = tmp_path / f"h{halt}.ckpt"
            _, out1 = _enumerate(
                graph, checkpoint_path=str(ckpt), checkpoint_every=1,
                halt_after_tasks=halt,
            )
            counts.append(len(out1))
        assert counts == sorted(counts)  # more tasks -> no fewer emissions
        assert counts[-1] <= len(base)

    def test_resume_under_faults_is_identical(self, graph, tmp_path):
        _, base = _enumerate(graph)
        plan = FaultPlan(4, p_sm_crash=0.04, p_warp_hang=0.04,
                         p_queue_drop=0.05, p_mem_pressure=0.05)
        ckpt = tmp_path / "faulty.ckpt"
        _enumerate(graph, fault_plan=plan, checkpoint_path=str(ckpt),
                   checkpoint_every=1, halt_after_tasks=20)
        assert ckpt.exists()
        # the snapshot persists the fault-plan cursor: a fresh plan
        # object with the same seed continues the same fault sequence
        resume_plan = FaultPlan(4, p_sm_crash=0.04, p_warp_hang=0.04,
                                p_queue_drop=0.05, p_mem_pressure=0.05)
        _, out2 = _enumerate(graph, fault_plan=resume_plan,
                             checkpoint_path=str(ckpt), resume=True)
        assert sorted(out2) == sorted(base)
        assert len(out2) == len(set(out2))

    def test_resume_wrong_graph_fails_actionably(self, graph, tmp_path):
        other = random_bipartite(28, 24, 0.25, seed=99)
        ckpt = tmp_path / "a.ckpt"
        _enumerate(graph, checkpoint_path=str(ckpt), checkpoint_every=1,
                   halt_after_tasks=3)
        with pytest.raises(CheckpointError, match="different graph"):
            _enumerate(other, checkpoint_path=str(ckpt), resume=True)

    def test_resume_wrong_config_fails_actionably(self, graph, tmp_path):
        ckpt = tmp_path / "b.ckpt"
        _enumerate(graph, checkpoint_path=str(ckpt), checkpoint_every=1,
                   halt_after_tasks=3)
        other_cfg = GMBEConfig(bound_height=3, bound_size=4,
                               max_task_retries=10)
        with pytest.raises(CheckpointError, match="bound_height"):
            gmbe_gpu(graph, config=other_cfg,
                     checkpoint_path=str(ckpt), resume=True)

    def test_resume_wrong_device_fails_actionably(self, graph, tmp_path):
        ckpt = tmp_path / "c.ckpt"
        _enumerate(graph, checkpoint_path=str(ckpt), checkpoint_every=1,
                   halt_after_tasks=3)
        with pytest.raises(CheckpointError, match="topology|V100"):
            gmbe_gpu(graph, config=CFG, device=V100,
                     checkpoint_path=str(ckpt), resume=True)

    def test_resume_corrupted_checkpoint_fails_actionably(self, graph, tmp_path):
        ckpt = tmp_path / "d.ckpt"
        _enumerate(graph, checkpoint_path=str(ckpt), checkpoint_every=1,
                   halt_after_tasks=3)
        text = ckpt.read_text()
        ckpt.write_text(text[: len(text) // 2])  # simulate torn write
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            _enumerate(graph, checkpoint_path=str(ckpt), resume=True)

    def test_clean_run_leaves_no_checkpoint(self, graph, tmp_path):
        ckpt = tmp_path / "clean.ckpt"
        res, out = _enumerate(graph, checkpoint_path=str(ckpt),
                              checkpoint_every=5)
        assert not ckpt.exists()
        assert res.extras["checkpoint_writes"] >= 1  # it did checkpoint
        _, base = _enumerate(graph)
        assert sorted(out) == sorted(base)

    def test_elapsed_cycles_accumulate_across_resume(self, graph, tmp_path):
        full, _ = _enumerate(graph)
        ckpt = tmp_path / "t.ckpt"
        r1, _ = _enumerate(graph, checkpoint_path=str(ckpt),
                           checkpoint_every=1, halt_after_tasks=10)
        r2, _ = _enumerate(graph, checkpoint_path=str(ckpt), resume=True)
        # resumed sim_time includes the pre-halt cycles: it must be at
        # least the halted run's and in the ballpark of the full run's
        assert r2.sim_time >= r1.sim_time
        assert r2.sim_time >= 0.9 * full.sim_time


class TestDurability:
    def test_save_fsyncs_data_and_directory(self, tmp_path, monkeypatch):
        """Atomic rename alone survives a process crash; surviving a
        machine crash additionally needs the file *and* its containing
        directory flushed.  Record every fsync to prove both happen."""
        import os as _os

        synced = []
        real_fsync = _os.fsync

        def recording_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr("os.fsync", recording_fsync)
        path = tmp_path / "durable.ckpt"
        save_checkpoint(path, _snapshot())
        assert load_checkpoint(path).root_cursor == 5
        assert len(synced) == 2  # temp file, then the directory

    def test_save_tolerates_directory_fsync_refusal(self, tmp_path,
                                                    monkeypatch):
        """Some filesystems reject fsync on a directory fd; the write
        must still land (the data fsync already happened)."""
        import os as _os
        import stat as _stat

        real_fsync = _os.fsync

        def picky_fsync(fd):
            if _stat.S_ISDIR(_os.fstat(fd).st_mode):
                raise OSError(22, "directory fsync refused")
            return real_fsync(fd)

        monkeypatch.setattr("os.fsync", picky_fsync)
        path = tmp_path / "degraded.ckpt"
        save_checkpoint(path, _snapshot())
        assert load_checkpoint(path).root_cursor == 5
