"""Tests for sequential GMBE (node-reuse iteration + pruning)."""

import pytest

from repro.core import BicliqueCollector, oombea, reference_mbe, verify_biclique
from repro.gmbe import GMBEConfig, gmbe_host
from repro.graph import (
    BipartiteGraph,
    crown_graph,
    planted_bicliques,
    power_law_bipartite,
    random_bipartite,
)


class TestCorrectness:
    def test_paper_graph(self, paper_graph):
        col = BicliqueCollector()
        res = gmbe_host(paper_graph, col)
        assert res.n_maximal == 6
        assert col.as_set() == reference_mbe(paper_graph)

    @pytest.mark.parametrize("prune", [True, False])
    def test_random_graphs(self, prune):
        cfg = GMBEConfig(prune=prune)
        for seed in range(5):
            g = random_bipartite(13, 10, 0.3, seed=seed)
            col = BicliqueCollector()
            gmbe_host(g, col, config=cfg)
            assert col.as_set() == reference_mbe(g), f"seed={seed}"

    def test_crown(self):
        g = crown_graph(8)
        col = BicliqueCollector()
        gmbe_host(g, col)
        assert col.as_set() == reference_mbe(g)

    def test_planted(self):
        g = planted_bicliques(50, 35, [(9, 6), (8, 5)], noise_p=0.04, overlap=0.5, seed=1)
        assert gmbe_host(g).n_maximal == oombea(g).n_maximal

    def test_matches_baselines_on_larger_graph(self):
        g = power_law_bipartite(400, 200, 1800, seed=9)
        assert gmbe_host(g).n_maximal == oombea(g).n_maximal

    def test_outputs_verified(self):
        g = random_bipartite(22, 16, 0.3, seed=11)
        col = BicliqueCollector()
        gmbe_host(g, col)
        for b in col.bicliques:
            assert verify_biclique(g, b.left, b.right) == (True, True)

    def test_no_duplicates(self):
        g = power_law_bipartite(250, 130, 1100, seed=12)
        col = BicliqueCollector()
        res = gmbe_host(g, col)
        assert len(col.as_set()) == len(col.bicliques) == res.n_maximal

    def test_empty_and_edgeless(self):
        assert gmbe_host(BipartiteGraph.from_edges(0, 0, [])).n_maximal == 0
        assert gmbe_host(BipartiteGraph.from_edges(4, 3, [])).n_maximal == 0


class TestPruning:
    def test_prune_preserves_count_reduces_checks(self):
        g = power_law_bipartite(300, 160, 1400, seed=2)
        on = gmbe_host(g, config=GMBEConfig(prune=True))
        off = gmbe_host(g, config=GMBEConfig(prune=False))
        assert on.n_maximal == off.n_maximal
        assert on.counters.non_maximal < off.counters.non_maximal
        assert on.counters.pruned > 0
        assert off.counters.pruned == 0

    def test_table2_ratio_improves(self):
        """The paper's Table 2: δ/α drops by ~48–93% with pruning."""
        g = power_law_bipartite(400, 200, 2000, seed=3)
        on = gmbe_host(g, config=GMBEConfig(prune=True))
        off = gmbe_host(g, config=GMBEConfig(prune=False))
        assert on.counters.nonmaximal_ratio() < 0.6 * off.counters.nonmaximal_ratio()

    def test_maximal_counts_equal_bicliques(self):
        g = random_bipartite(30, 20, 0.3, seed=4)
        res = gmbe_host(g)
        assert res.counters.maximal == res.n_maximal


class TestNodeReuseVariant:
    def test_without_reuse_identical_results(self):
        for seed in range(3):
            g = random_bipartite(15, 11, 0.35, seed=seed)
            col_a = BicliqueCollector()
            col_b = BicliqueCollector()
            a = gmbe_host(g, col_a, config=GMBEConfig(node_reuse=True))
            b = gmbe_host(g, col_b, config=GMBEConfig(node_reuse=False))
            assert col_a.as_set() == col_b.as_set()
            assert a.counters.nodes_generated == b.counters.nodes_generated

    def test_without_reuse_respects_prune_flag(self):
        g = power_law_bipartite(200, 110, 900, seed=7)
        on = gmbe_host(g, config=GMBEConfig(node_reuse=False, prune=True))
        off = gmbe_host(g, config=GMBEConfig(node_reuse=False, prune=False))
        assert on.n_maximal == off.n_maximal
        assert on.counters.non_maximal <= off.counters.non_maximal
