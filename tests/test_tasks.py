"""Tests for per-vertex root-task construction (Alg. 3/4)."""

import numpy as np

from repro.core.bicliques import Counters
from repro.core.expand import gamma
from repro.core.localcount import LocalCounter
from repro.core.tasks import build_root_task
from repro.graph import random_bipartite
from repro.graph.preprocess import prepare


class TestBuildRootTask:
    def test_closure_property(self):
        """Task right side is exactly Γ(N(v_s)) — maximal by construction."""
        g = prepare(random_bipartite(15, 10, 0.35, seed=1)).graph
        lc = LocalCounter(g)
        for v_s in range(g.n_v):
            task = build_root_task(g, lc, v_s)
            if task is None:
                continue
            assert task.right.tolist() == gamma(g, task.left).tolist()
            assert np.array_equal(task.left, g.neighbors_v(v_s))

    def test_dedup_each_vertex_owns_its_closure(self):
        g = prepare(random_bipartite(15, 10, 0.35, seed=2)).graph
        lc = LocalCounter(g)
        for v_s in range(g.n_v):
            task = build_root_task(g, lc, v_s)
            if task is not None:
                assert int(task.right[0]) == v_s  # v_s is the smallest in R

    def test_every_closure_owned_exactly_once(self):
        g = prepare(random_bipartite(18, 12, 0.3, seed=3)).graph
        lc = LocalCounter(g)
        seen = set()
        for v_s in range(g.n_v):
            task = build_root_task(g, lc, v_s)
            if task is not None:
                key = tuple(task.right.tolist())
                assert key not in seen
                seen.add(key)

    def test_candidates_later_order_partial(self):
        g = prepare(random_bipartite(15, 10, 0.4, seed=4)).graph
        lc = LocalCounter(g)
        for v_s in range(g.n_v):
            task = build_root_task(g, lc, v_s)
            if task is None:
                continue
            for i, vc in enumerate(task.cands):
                assert int(vc) > v_s
                nl = len(np.intersect1d(g.neighbors_v(int(vc)), task.left))
                assert 0 < nl < len(task.left)
                assert task.counts[i] == nl

    def test_isolated_vertex_gives_none(self):
        from repro.graph import BipartiteGraph

        g = BipartiteGraph.from_edges(3, 3, [(0, 0)])
        lc = LocalCounter(g)
        assert build_root_task(g, lc, 1) is None

    def test_estimates(self):
        g = prepare(random_bipartite(20, 14, 0.4, seed=5)).graph
        lc = LocalCounter(g)
        for v_s in range(g.n_v):
            task = build_root_task(g, lc, v_s)
            if task is None:
                continue
            h = task.estimated_height()
            assert h == min(len(task.left), len(task.cands))
            assert task.estimated_size() == h * len(task.cands)

    def test_counters_charged(self):
        g = prepare(random_bipartite(10, 8, 0.5, seed=6)).graph
        lc = LocalCounter(g)
        c = Counters()
        build_root_task(g, lc, 0, c)
        assert c.set_op_work > 0
