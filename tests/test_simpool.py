"""Tests for the simulated multi-core pool."""

import pytest

from repro.parallel import PoolSchedule, run_tasks_threaded, schedule_tasks


class TestScheduleTasks:
    def test_single_worker_sums(self):
        s = schedule_tasks([3, 4, 5], 1)
        assert s.makespan == 12.0
        assert s.core_loads == [12.0]

    def test_perfect_split(self):
        s = schedule_tasks([5, 5, 5, 5], 2)
        assert s.makespan == 10.0

    def test_greedy_assignment_order(self):
        # arrival order matters: [9, 1, 1, 1] on 2 cores -> 9 vs 3
        s = schedule_tasks([9, 1, 1, 1], 2)
        assert s.makespan == 9.0

    def test_empty(self):
        s = schedule_tasks([], 4)
        assert s.makespan == 0.0

    def test_overhead_added_per_task(self):
        s = schedule_tasks([1, 1], 1, per_task_overhead=0.5)
        assert s.makespan == 3.0

    def test_efficiency(self):
        s = schedule_tasks([5, 5], 2)
        assert s.efficiency == pytest.approx(1.0)
        s = schedule_tasks([10], 2)
        assert s.efficiency == pytest.approx(0.5)

    def test_busy_cores_at(self):
        s = schedule_tasks([4, 2], 2)
        assert s.busy_cores_at(1.0) == 2
        assert s.busy_cores_at(3.0) == 1

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            schedule_tasks([1], 0)

    def test_makespan_never_below_critical_values(self):
        costs = [7, 3, 2, 8, 1]
        for n in (1, 2, 3, 10):
            s = schedule_tasks(costs, n)
            assert s.makespan >= max(costs)
            assert s.makespan >= sum(costs) / n - 1e-9

    def test_deterministic(self):
        a = schedule_tasks([3, 1, 4, 1, 5], 3)
        b = schedule_tasks([3, 1, 4, 1, 5], 3)
        assert a.intervals == b.intervals


class TestThreadedRunner:
    def test_preserves_order(self):
        out = run_tasks_threaded(lambda x: x * 2, range(20), n_workers=4)
        assert out == [x * 2 for x in range(20)]

    def test_single_worker_path(self):
        out = run_tasks_threaded(lambda x: x + 1, [1, 2], n_workers=1)
        assert out == [2, 3]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            run_tasks_threaded(lambda x: x, [1], n_workers=0)
