"""Tests for scipy.sparse / networkx interop."""

import networkx as nx
import numpy as np
import pytest
from scipy.sparse import csr_matrix

from repro.graph import (
    EdgeListError,
    from_networkx,
    from_scipy_sparse,
    to_networkx,
    to_scipy_sparse,
)


class TestScipy:
    def test_roundtrip(self, paper_graph):
        m = to_scipy_sparse(paper_graph)
        g2 = from_scipy_sparse(m, name="round")
        assert set(g2.edges()) == set(paper_graph.edges())
        assert g2.name == "round"

    def test_from_coo_with_duplicates(self):
        m = csr_matrix(np.array([[1, 0], [2, 1]]))  # value 2 still one edge
        g = from_scipy_sparse(m)
        assert g.n_edges == 3

    def test_shape_preserved_with_isolated_columns(self):
        m = csr_matrix(np.array([[1, 0, 0]]))
        g = from_scipy_sparse(m)
        assert (g.n_u, g.n_v) == (1, 3)

    def test_matrix_matches_biadjacency(self, paper_graph):
        m = to_scipy_sparse(paper_graph).toarray()
        assert np.array_equal(m, paper_graph.to_biadjacency())


class TestNetworkx:
    def test_roundtrip(self, paper_graph):
        nxg = to_networkx(paper_graph)
        assert nxg.number_of_nodes() == 9
        assert nxg.number_of_edges() == paper_graph.n_edges
        g2 = from_networkx(nxg)
        assert set(g2.edges()) == set(paper_graph.edges())

    def test_bipartite_attribute_set(self, paper_graph):
        nxg = to_networkx(paper_graph)
        sides = nx.get_node_attributes(nxg, "bipartite")
        assert sum(v == 0 for v in sides.values()) == paper_graph.n_u

    def test_is_bipartite(self, paper_graph):
        assert nx.is_bipartite(to_networkx(paper_graph))

    def test_missing_attribute_rejected(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(EdgeListError):
            from_networkx(g)

    def test_arbitrary_labels(self):
        g = nx.Graph()
        g.add_node("alice", bipartite=0)
        g.add_node("bob", bipartite=0)
        g.add_node("book", bipartite=1)
        g.add_edge("alice", "book")
        g.add_edge("book", "bob")  # reversed orientation is fine
        out = from_networkx(g)
        assert (out.n_u, out.n_v, out.n_edges) == (2, 1, 2)

    def test_mbe_through_networkx_pipeline(self, paper_graph):
        """networkx in -> enumerate -> same six bicliques."""
        from repro.gmbe import gmbe_host

        g = from_networkx(to_networkx(paper_graph))
        assert gmbe_host(g).n_maximal == 6
