"""Tests for the paper's §5 preprocessing pipeline."""

import numpy as np
import pytest

from repro.graph import BipartiteGraph, degree_ascending_order, prepare, random_bipartite


class TestSideSelection:
    def test_swaps_when_v_larger(self):
        g = BipartiteGraph.from_edges(2, 5, [(0, 0), (1, 4), (0, 3)])
        p = prepare(g)
        assert p.swapped
        assert p.graph.n_u >= p.graph.n_v

    def test_keeps_when_u_larger(self, paper_graph):
        p = prepare(paper_graph)
        assert not p.swapped
        assert p.graph.n_u == 5

    def test_equal_sides_not_swapped(self):
        g = BipartiteGraph.from_edges(3, 3, [(0, 0), (1, 1), (2, 2)])
        assert not prepare(g).swapped


class TestOrdering:
    def test_degree_ascending(self, paper_graph):
        p = prepare(paper_graph)
        degs = p.graph.degrees_v
        assert all(degs[i] <= degs[i + 1] for i in range(len(degs) - 1))

    def test_none_order_keeps_labels(self, paper_graph):
        p = prepare(paper_graph, order="none")
        assert np.array_equal(p.v_original, np.arange(paper_graph.n_v))

    def test_unknown_order_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            prepare(paper_graph, order="zigzag")

    def test_perm_is_permutation(self):
        g = random_bipartite(10, 8, 0.4, seed=1)
        perm = degree_ascending_order(g)
        assert sorted(perm.tolist()) == list(range(8))

    def test_deterministic_tiebreak(self):
        g = BipartiteGraph.from_edges(2, 3, [(0, 0), (0, 1), (0, 2)])
        assert degree_ascending_order(g).tolist() == [0, 1, 2]


class TestLabelMapping:
    def test_structure_preserved(self, paper_graph):
        p = prepare(paper_graph)
        # edge (u, new_v) exists iff (u, v_original[new_v]) existed
        for new_v in range(p.graph.n_v):
            old_v = int(p.v_original[new_v])
            got = sorted(p.graph.neighbors_v(new_v).tolist())
            want = sorted(paper_graph.neighbors_v(old_v).tolist())
            assert got == want

    def test_biclique_to_input_labels_unswapped(self, paper_graph):
        p = prepare(paper_graph)
        left = np.array([0, 1])
        right = np.array([2])
        l_in, r_in = p.biclique_to_input_labels(left, right)
        assert l_in.tolist() == [0, 1]
        assert r_in.tolist() == [int(p.v_original[2])]

    def test_biclique_to_input_labels_swapped(self):
        g = BipartiteGraph.from_edges(2, 4, [(0, v) for v in range(4)] + [(1, 0)])
        p = prepare(g)
        assert p.swapped
        l_in, r_in = p.biclique_to_input_labels(
            np.array([0]), np.array([0, 1])
        )
        # swapped: returned (input U side, input V side)
        assert len(l_in) == 2 and len(r_in) == 1

    def test_roundtrip_random_unswapped(self):
        g = random_bipartite(9, 6, 0.5, seed=3)
        p = prepare(g)
        assert not p.swapped
        for u in range(p.graph.n_u):
            for v in p.graph.neighbors_u(u):
                l_in, r_in = p.biclique_to_input_labels(
                    np.array([u]), np.array([int(v)])
                )
                assert g.has_edge(int(l_in[0]), int(r_in[0]))

    def test_roundtrip_random_swapped(self):
        g = random_bipartite(5, 8, 0.5, seed=4)
        p = prepare(g)
        assert p.swapped
        for u in range(p.graph.n_u):
            for v in p.graph.neighbors_u(u):
                l_in, r_in = p.biclique_to_input_labels(
                    np.array([u]), np.array([int(v)])
                )
                # l_in is on the input U side, r_in on the input V side
                assert g.has_edge(int(l_in[0]), int(r_in[0]))
