"""Metric-namespace drift gate.

``docs/observability.md`` is the dashboard vocabulary: every dotted
instrument name the code can register must be documented there, either
verbatim or via a documented ``family.*`` wildcard.  This test walks
every ``counter(...)`` / ``gauge(...)`` / ``histogram(...)`` literal in
``src/repro`` (plus the name tables that feed dynamic registrations)
and fails on any name the doc does not cover — so adding a metric
without documenting it breaks CI instead of silently forking the
namespace.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"
DOC = Path(__file__).resolve().parents[1] / "docs" / "observability.md"

#: instrument-creation calls with a literal name
_CALL_RE = re.compile(
    r"\.(?:counter|gauge|histogram)\(\s*[rf]?[\"']([^\"'{}]+)[\"']"
)

#: doc-example names that never reach a real registry
_EXAMPLES = {"a.b"}


def _literal_names() -> set[str]:
    names: set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        for match in _CALL_RE.finditer(path.read_text(encoding="utf-8")):
            names.add(match.group(1))
    return names - _EXAMPLES


def _table_names() -> set[str]:
    """Names registered through tables / f-strings the regex can't see."""
    from repro.service.metrics import COUNTER_NAMES, HISTOGRAM_NAMES
    from repro.sharding.coordinator import (
        _SUPERVISOR_COUNTERS,
        _SUPERVISOR_DESCRIPTIONS,
    )
    from repro.telemetry.bridge import _COUNTER_FIELDS, _QUEUE_FIELDS

    names: set[str] = set()
    names.update(COUNTER_NAMES.values())
    names.update(HISTOGRAM_NAMES.values())
    names.update(_SUPERVISOR_COUNTERS.values())
    names.update(_SUPERVISOR_DESCRIPTIONS)
    names.update(f"sim.work.{f}" for f in _COUNTER_FIELDS)
    names.add("sim.work.peak_stack_depth")
    names.update(f"sim.queue.{f}" for f in _QUEUE_FIELDS)
    names.update(
        f"sim.tasks.{f}" for f in ("executed", "split", "requeued", "lost")
    )
    names.add("sim.makespan_cycles")
    names.add("sim.faults.total")  # per-kind names ride the sim.faults.* wildcard
    return names


def _documented(name: str, doc: str) -> bool:
    if name in doc:
        return True
    parts = name.split(".")
    return any(
        f"{'.'.join(parts[:i])}.*" in doc for i in range(1, len(parts))
    )


def test_every_metric_name_is_documented():
    doc = DOC.read_text(encoding="utf-8")
    names = _literal_names() | _table_names()
    assert names, "collector found no metric names — regex broke?"
    undocumented = sorted(n for n in names if not _documented(n, doc))
    assert not undocumented, (
        "metric names missing from docs/observability.md "
        f"(document them or a family wildcard): {undocumented}"
    )


def test_collector_sees_known_families():
    """The collector itself must not silently go blind."""
    names = _literal_names() | _table_names()
    for expected in (
        "service.jobs.submitted",
        "supervisor.worker_deaths",
        "shard.runs",
        "sim.tasks.executed",
        "telemetry.ring.dropped",
        "telemetry.worker.dropped",
        "tune.trials",
    ):
        assert expected in names, f"collector no longer sees {expected}"
