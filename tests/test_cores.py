"""Tests for bipartite (α, β)-core decomposition."""

import numpy as np
import pytest

from repro.graph import (
    BipartiteGraph,
    alpha_beta_core,
    complete_bipartite,
    core_subgraph,
    planted_bicliques,
    random_bipartite,
)


def brute_core(g: BipartiteGraph, alpha: int, beta: int):
    """Reference peeling with sets."""
    us = set(range(g.n_u))
    vs = set(range(g.n_v))
    changed = True
    while changed:
        changed = False
        for u in list(us):
            if sum(1 for v in g.neighbors_u(u) if int(v) in vs) < alpha:
                us.discard(u)
                changed = True
        for v in list(vs):
            if sum(1 for u in g.neighbors_v(v) if int(u) in us) < beta:
                vs.discard(v)
                changed = True
    return us, vs


class TestAlphaBetaCore:
    def test_zero_thresholds_keep_all(self, paper_graph):
        u_mask, v_mask = alpha_beta_core(paper_graph, 0, 0)
        assert u_mask.all() and v_mask.all()

    def test_complete_graph_survives(self):
        g = complete_bipartite(4, 5)
        u_mask, v_mask = alpha_beta_core(g, 5, 4)
        assert u_mask.all() and v_mask.all()
        u_mask, v_mask = alpha_beta_core(g, 6, 1)
        assert not u_mask.any()
        assert not v_mask.any()  # cascade: all V lose support

    def test_matches_bruteforce(self):
        for seed in range(6):
            g = random_bipartite(15, 12, 0.3, seed=seed)
            for a, b in ((1, 1), (2, 2), (3, 2), (2, 4)):
                u_mask, v_mask = alpha_beta_core(g, a, b)
                us, vs = brute_core(g, a, b)
                assert set(np.nonzero(u_mask)[0].tolist()) == us, (seed, a, b)
                assert set(np.nonzero(v_mask)[0].tolist()) == vs, (seed, a, b)

    def test_core_is_maximal_subgraph(self):
        g = random_bipartite(20, 16, 0.25, seed=9)
        core, u_ids, v_ids = core_subgraph(g, 2, 2)
        assert (core.degrees_u >= 2).all()
        assert (core.degrees_v >= 2).all()

    def test_cascading_peel(self):
        # u0-v0, u1-v0, u1-v1: u0 (degree 1) peels; u1, v0, v1 survive (2,1)
        g = BipartiteGraph.from_edges(2, 2, [(0, 0), (1, 0), (1, 1)])
        u_mask, v_mask = alpha_beta_core(g, 2, 1)
        assert u_mask.tolist() == [False, True]
        assert v_mask.tolist() == [True, True]
        # raising beta to 2 collapses everything: v1 (degree 1) peels,
        # u1 drops to 1 < 2, then v0 loses u1 ... chain reaction
        u_mask, v_mask = alpha_beta_core(g, 2, 2)
        assert not u_mask.any() and not v_mask.any()


class TestCoreSubgraph:
    def test_id_maps(self, paper_graph):
        core, u_ids, v_ids = core_subgraph(paper_graph, 2, 2)
        for i in range(core.n_u):
            for j in core.neighbors_u(i):
                assert paper_graph.has_edge(int(u_ids[i]), int(v_ids[int(j)]))

    def test_empty_core(self):
        g = BipartiteGraph.from_edges(3, 3, [(0, 0)])
        core, u_ids, v_ids = core_subgraph(g, 5, 5)
        assert core.n_u == 0 and core.n_v == 0

    def test_planted_block_survives_tight_core(self):
        g = planted_bicliques(80, 60, [(10, 8)], noise_p=0.02, seed=3)
        core, u_ids, v_ids = core_subgraph(g, 8, 10)
        # the 10x8 block satisfies (8,10) degrees, so the core is nonempty
        assert core.n_u >= 10 and core.n_v >= 8
        # and much smaller than the input (noise peeled away)
        assert core.n_u < g.n_u / 2
