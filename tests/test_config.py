"""Tests for GMBEConfig validation and updates."""

import pytest

from repro.gmbe import DEFAULT_CONFIG, GMBEConfig


class TestDefaults:
    def test_paper_defaults(self):
        """§6.1: bound_height=20, bound_size=1500, WarpPerSM=16."""
        assert DEFAULT_CONFIG.bound_height == 20
        assert DEFAULT_CONFIG.bound_size == 1500
        assert DEFAULT_CONFIG.warps_per_sm == 16
        assert DEFAULT_CONFIG.prune is True
        assert DEFAULT_CONFIG.scheduling == "task"
        assert DEFAULT_CONFIG.node_reuse is True


class TestValidation:
    def test_bounds_positive(self):
        with pytest.raises(ValueError):
            GMBEConfig(bound_height=0)
        with pytest.raises(ValueError):
            GMBEConfig(bound_size=-1)

    def test_warps_positive(self):
        with pytest.raises(ValueError):
            GMBEConfig(warps_per_sm=0)

    def test_scheduling_values(self):
        with pytest.raises(ValueError):
            GMBEConfig(scheduling="grid")
        for ok in ("task", "warp", "block"):
            assert GMBEConfig(scheduling=ok).scheduling == ok


class TestWith:
    def test_functional_update(self):
        cfg = DEFAULT_CONFIG.with_(prune=False, warps_per_sm=8)
        assert cfg.prune is False and cfg.warps_per_sm == 8
        assert DEFAULT_CONFIG.prune is True  # original untouched

    def test_update_validates(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_(scheduling="bogus")

    def test_hashable_for_cache_keys(self):
        assert hash(GMBEConfig()) == hash(GMBEConfig())
        assert GMBEConfig() != GMBEConfig(prune=False)
