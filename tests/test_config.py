"""Tests for GMBEConfig validation and updates."""

import pytest

from repro.gmbe import DEFAULT_CONFIG, GMBEConfig


class TestDefaults:
    def test_paper_defaults(self):
        """§6.1: bound_height=20, bound_size=1500, WarpPerSM=16."""
        assert DEFAULT_CONFIG.bound_height == 20
        assert DEFAULT_CONFIG.bound_size == 1500
        assert DEFAULT_CONFIG.warps_per_sm == 16
        assert DEFAULT_CONFIG.prune is True
        assert DEFAULT_CONFIG.scheduling == "task"
        assert DEFAULT_CONFIG.node_reuse is True


class TestValidation:
    def test_bounds_positive(self):
        with pytest.raises(ValueError):
            GMBEConfig(bound_height=0)
        with pytest.raises(ValueError):
            GMBEConfig(bound_size=-1)

    def test_warps_positive(self):
        with pytest.raises(ValueError):
            GMBEConfig(warps_per_sm=0)

    def test_scheduling_values(self):
        with pytest.raises(ValueError):
            GMBEConfig(scheduling="grid")
        for ok in ("task", "warp", "block"):
            assert GMBEConfig(scheduling=ok).scheduling == ok


class TestWith:
    def test_functional_update(self):
        cfg = DEFAULT_CONFIG.with_(prune=False, warps_per_sm=8)
        assert cfg.prune is False and cfg.warps_per_sm == 8
        assert DEFAULT_CONFIG.prune is True  # original untouched

    def test_update_validates(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_(scheduling="bogus")

    def test_hashable_for_cache_keys(self):
        assert hash(GMBEConfig()) == hash(GMBEConfig())
        assert GMBEConfig() != GMBEConfig(prune=False)


class TestBatchTasksKnob:
    def test_default_is_auto(self):
        assert DEFAULT_CONFIG.batch_tasks == "auto"

    def test_valid_values(self):
        assert GMBEConfig(batch_tasks="off").batch_tasks == "off"
        assert GMBEConfig(batch_tasks="auto").batch_tasks == "auto"
        assert GMBEConfig(batch_tasks=4).batch_tasks == 4

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            GMBEConfig(batch_tasks="on")
        with pytest.raises(ValueError):
            GMBEConfig(batch_tasks=0)
        with pytest.raises(ValueError):
            GMBEConfig(batch_tasks=-3)
        with pytest.raises(ValueError):
            GMBEConfig(batch_tasks=True)  # bools are not batch sizes
        with pytest.raises(ValueError):
            GMBEConfig(batch_tasks=2.5)

    def test_json_round_trip(self):
        for value in ("off", "auto", 4):
            cfg = GMBEConfig(batch_tasks=value)
            back = GMBEConfig.from_json(cfg.to_json())
            assert back == cfg
            assert back.batch_tasks == value

    def test_values_validated_on_load(self):
        with pytest.raises(ValueError):
            GMBEConfig.from_json('{"batch_tasks": "sometimes"}')
        with pytest.raises(ValueError):
            GMBEConfig.from_json('{"batch_tasks": 0}')


class TestOrderKnob:
    def test_values(self):
        for ok in ("degree", "degeneracy", "none"):
            assert GMBEConfig(order=ok).order == ok
        with pytest.raises(ValueError):
            GMBEConfig(order="random")

    def test_order_changes_signature(self):
        """Cache keys and checkpoint guards must see the ordering."""
        assert (
            GMBEConfig(order="degree").signature()
            != GMBEConfig(order="degeneracy").signature()
        )


class TestSerialization:
    def test_json_round_trip_defaults(self):
        assert GMBEConfig.from_json(GMBEConfig().to_json()) == GMBEConfig()

    def test_json_round_trip_every_field_changed(self):
        cfg = GMBEConfig(
            bound_height=7,
            bound_size=99,
            warps_per_sm=8,
            prune=False,
            scheduling="warp",
            node_reuse=False,
            set_backend="bitset",
            max_task_retries=5,
            batch_tasks=4,
            order="degeneracy",
        )
        assert GMBEConfig.from_json(cfg.to_json()) == cfg

    def test_missing_keys_take_defaults(self):
        cfg = GMBEConfig.from_dict({"bound_height": 4})
        assert cfg == GMBEConfig(bound_height=4)

    def test_unknown_keys_rejected_with_names(self):
        with pytest.raises(ValueError) as exc:
            GMBEConfig.from_dict({"bound_hieght": 4, "warp_count": 8})
        msg = str(exc.value)
        assert "bound_hieght" in msg and "warp_count" in msg
        assert "bound_height" in msg  # the valid keys are listed

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            GMBEConfig.from_dict([("bound_height", 4)])

    def test_malformed_json_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            GMBEConfig.from_json("{not json")

    def test_values_validated_on_load(self):
        with pytest.raises(ValueError):
            GMBEConfig.from_json('{"scheduling": "grid"}')
