"""Tests for edge-list IO (KONECT/SNAP-style text formats)."""

import numpy as np
import pytest

from repro.graph import (
    BipartiteGraph,
    EdgeListError,
    read_edge_list,
    reads_edge_list,
    write_edge_list,
)


class TestParse:
    def test_basic_zero_indexed(self):
        g = reads_edge_list("0 0\n0 1\n1 0\n")
        assert (g.n_u, g.n_v, g.n_edges) == (2, 2, 3)

    def test_konect_one_indexed_autodetect(self):
        g = reads_edge_list("1 1\n1 2\n2 1\n")
        assert (g.n_u, g.n_v, g.n_edges) == (2, 2, 3)
        assert g.has_edge(0, 0)

    def test_explicit_indexing_override(self):
        g = reads_edge_list("1 1\n2 2\n", one_indexed=False)
        # ids 1,2 are compacted to dense 0,1 per side
        assert (g.n_u, g.n_v) == (2, 2)

    def test_comments_and_blank_lines(self):
        text = "% konect header\n# snap header\n\n0 0\n0 1\n"
        g = reads_edge_list(text)
        assert g.n_edges == 2

    def test_extra_columns_ignored(self):
        g = reads_edge_list("0 0 5 1234567\n0 1 2 1234568\n")
        assert g.n_edges == 2

    def test_sparse_ids_compacted(self):
        g = reads_edge_list("0 0\n100 7\n")
        assert (g.n_u, g.n_v) == (2, 2)

    def test_malformed_line_raises(self):
        with pytest.raises(EdgeListError, match="line 1"):
            reads_edge_list("justoneword\n")

    def test_non_integer_raises(self):
        with pytest.raises(EdgeListError, match="non-integer"):
            reads_edge_list("a b\n")

    def test_empty_input(self):
        g = reads_edge_list("% nothing\n")
        assert g.n_edges == 0


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path, paper_graph):
        from repro.graph import read_matrix_market, write_matrix_market

        path = tmp_path / "g.mtx"
        write_matrix_market(paper_graph, path)
        g2 = read_matrix_market(path)
        assert (g2.n_u, g2.n_v) == (paper_graph.n_u, paper_graph.n_v)
        assert set(g2.edges()) == set(paper_graph.edges())

    def test_isolated_vertices_survive(self, tmp_path):
        from repro.graph import read_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n5 7 1\n1 1\n"
        )
        g = read_matrix_market(path)
        assert (g.n_u, g.n_v, g.n_edges) == (5, 7, 1)

    def test_real_values_with_zero_skipped(self, tmp_path):
        from repro.graph import read_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n1 1 3.5\n2 2 0.0\n"
        )
        g = read_matrix_market(path)
        assert g.n_edges == 1

    def test_missing_header_rejected(self, tmp_path):
        from repro.graph import EdgeListError, read_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text("1 1 0\n")
        with pytest.raises(EdgeListError):
            read_matrix_market(path)

    def test_dense_format_rejected(self, tmp_path):
        from repro.graph import EdgeListError, read_matrix_market

        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n")
        with pytest.raises(EdgeListError):
            read_matrix_market(path)

    def test_scipy_mmread_compatible(self, tmp_path, paper_graph):
        """Our writer output parses with scipy.io.mmread."""
        from scipy.io import mmread

        from repro.graph import write_matrix_market

        path = tmp_path / "g.mtx"
        write_matrix_market(paper_graph, path)
        m = mmread(str(path))
        assert m.shape == (paper_graph.n_u, paper_graph.n_v)
        assert m.nnz == paper_graph.n_edges


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path, paper_graph):
        path = tmp_path / "g0.tsv"
        write_edge_list(paper_graph, path)
        g2 = read_edge_list(path)
        assert set(g2.edges()) == set(paper_graph.edges())

    def test_name_from_filename(self, tmp_path, paper_graph):
        path = tmp_path / "mygraph.tsv"
        write_edge_list(paper_graph, path)
        assert read_edge_list(path).name == "mygraph"

    def test_name_override(self, tmp_path, paper_graph):
        path = tmp_path / "x.tsv"
        write_edge_list(paper_graph, path)
        assert read_edge_list(path, name="other").name == "other"
