"""Tests for SVG plotting and figure rendering."""

import pytest

from repro.bench import clear_cache
from repro.bench.figures import (
    render_fig6,
    render_fig7,
    render_fig9,
    render_fig13,
)
from repro.bench.svgplot import SvgCanvas, grouped_bar_chart, line_chart


class TestSvgCanvas:
    def test_render_shell(self):
        c = SvgCanvas(100, 50)
        c.line(0, 0, 10, 10)
        c.rect(1, 1, 5, 5)
        c.text(10, 10, "hi & <bye>")
        svg = c.render()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "&amp;" in svg and "&lt;bye&gt;" in svg

    def test_polyline(self):
        c = SvgCanvas(10, 10)
        c.polyline([(0, 0), (5, 5)])
        assert "polyline" in c.render()


class TestCharts:
    def test_grouped_bars_linear(self):
        svg = grouped_bar_chart(["a", "b"], {"s1": [1, 2], "s2": [3, 0]})
        assert svg.count("<rect") >= 5  # 4 bars + background + legend
        assert "s1" in svg and "s2" in svg

    def test_grouped_bars_log(self):
        svg = grouped_bar_chart(
            ["a", "b", "c"], {"x": [0.001, 1.0, 1000.0]}, log=True
        )
        assert "1e" in svg  # log ticks

    def test_log_with_zero_values_safe(self):
        svg = grouped_bar_chart(["a"], {"x": [0.0]}, log=True)
        assert "<svg" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart([], {})
        with pytest.raises(ValueError):
            line_chart({})

    def test_line_chart(self):
        svg = line_chart(
            {"warp": ([0, 1, 2], [10, 5, 1]), "task": ([0, 1, 2], [10, 10, 2])},
            title="t", xlabel="x", ylabel="y",
        )
        assert svg.count("<polyline") >= 2
        assert "warp" in svg


class TestRenderers:
    @pytest.fixture(autouse=True)
    def fresh(self):
        clear_cache()
        yield
        clear_cache()

    def test_fig7_render(self, tmp_path):
        from repro.bench import experiment_fig7

        rows = experiment_fig7(codes=["Mti", "BX"])
        path = render_fig7(rows, tmp_path / "fig7.svg")
        text = (tmp_path / "fig7.svg").read_text()
        assert "memory demand" in text

    def test_fig6_render_tiny(self, tmp_path):
        from repro.bench import experiment_fig6

        res = experiment_fig6(
            scale=0.1, codes=["Mti"], algorithms=["ooMBEA", "GMBE"]
        )
        render_fig6(res, tmp_path / "fig6.svg")
        assert (tmp_path / "fig6.svg").exists()

    def test_fig8_10_11_12_render_tiny(self, tmp_path):
        from repro.bench import (
            experiment_fig8,
            experiment_fig10,
            experiment_fig11,
            experiment_fig12,
        )
        from repro.bench.figures import (
            render_fig8,
            render_fig10,
            render_fig11,
            render_fig12,
        )

        kw = dict(scale=0.1, codes=["Mti"])
        render_fig8(experiment_fig8(**kw), tmp_path / "f8.svg")
        render_fig10(
            experiment_fig10(**kw, grid=[(20, 1500), (40, 3500)]),
            tmp_path / "f10.svg",
        )
        render_fig11(experiment_fig11(**kw, grid=[8, 16]), tmp_path / "f11.svg")
        render_fig12(experiment_fig12(**kw), tmp_path / "f12.svg")
        for f in ("f8", "f10", "f11", "f12"):
            assert (tmp_path / f"{f}.svg").read_text().startswith("<svg")

    def test_fig9_and_13_render_tiny(self, tmp_path):
        from repro.bench import experiment_fig9, experiment_fig13

        curves = experiment_fig9(scale=0.1, codes=["Mti"], n_samples=20)
        paths = render_fig9(curves, tmp_path / "fig9")
        assert len(paths) == 1 and paths[0].endswith("fig9_Mti.svg")

        rows = experiment_fig13(scale=0.1, codes=["Mti"], gpu_counts=[1, 2])
        paths = render_fig13(rows, tmp_path / "fig13")
        assert (tmp_path / "fig13_Mti.svg").exists()
