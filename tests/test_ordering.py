"""Tests for vertex-ordering strategies."""

import numpy as np
import pytest

from repro.core import BicliqueCollector, reference_mbe
from repro.core.engine import EngineOptions
from repro.core.runner import run_baseline
from repro.graph import BipartiteGraph, random_bipartite
from repro.graph.ordering import ORDERINGS, degeneracy_order, order_vertices
from repro.graph.preprocess import prepare


class TestDegeneracyOrder:
    def test_is_permutation(self):
        g = random_bipartite(15, 12, 0.3, seed=1)
        perm = degeneracy_order(g)
        assert sorted(perm.tolist()) == list(range(g.n_v))

    def test_deterministic(self):
        g = random_bipartite(15, 12, 0.3, seed=2)
        assert np.array_equal(degeneracy_order(g), degeneracy_order(g))

    def test_isolated_vertices_first(self):
        g = BipartiteGraph.from_edges(3, 4, [(0, 0), (1, 0), (2, 0)])
        perm = degeneracy_order(g)
        # v1..v3 have no 2-hop neighbors -> peeled before v0 (count 0 each;
        # v0 also 0 two-hop since only wedges through shared Us... all
        # three U attach to v0 only, so everyone has count 0; order = id)
        assert sorted(perm.tolist()) == [0, 1, 2, 3]

    def test_peels_periphery_before_hub(self):
        # star-of-blocks: v0 shares U-vertices with everyone
        edges = []
        for k, v in enumerate(range(1, 5)):
            edges += [(k, v), (k, 0)]  # uk connects v0 and v_k
        g = BipartiteGraph.from_edges(4, 5, edges)
        perm = degeneracy_order(g)
        # the hub v0 (2-hop degree 4) outlives at least 3 of the 4
        # periphery vertices (after which its count ties with the last)
        assert perm[0] >= 3


class TestOrderVertices:
    def test_none_is_identity(self, paper_graph):
        assert order_vertices(paper_graph, "none").tolist() == list(
            range(paper_graph.n_v)
        )

    def test_degree_matches_preprocess(self, paper_graph):
        from repro.graph.preprocess import degree_ascending_order

        assert np.array_equal(
            order_vertices(paper_graph, "degree"),
            degree_ascending_order(paper_graph),
        )

    def test_unknown_rejected(self, paper_graph):
        with pytest.raises(ValueError):
            order_vertices(paper_graph, "voodoo")

    def test_registry_documented(self):
        assert set(ORDERINGS) == {"degree", "degeneracy", "none"}


class TestPrepareWithOrders:
    @pytest.mark.parametrize("order", ["degree", "degeneracy", "none"])
    def test_enumeration_invariant_under_order(self, order):
        for seed in range(3):
            g = random_bipartite(12, 10, 0.35, seed=seed)
            ref = reference_mbe(g)
            prepared = prepare(g, order=order)
            col = BicliqueCollector()
            from repro.core.engine import run_engine

            run_engine(prepared.graph, col, EngineOptions("id", True, True))
            mapped = {
                tuple(
                    map(
                        tuple,
                        prepared.biclique_to_input_labels(
                            np.array(b.left), np.array(b.right)
                        ),
                    )
                )
                for b in col.bicliques
            }
            want = {(b.left, b.right) for b in ref}
            assert {(tuple(l), tuple(r)) for l, r in mapped} == want
