"""Tests for the benchmark plumbing (dispatch, memoization, devices)."""

import pytest

from repro.bench import clear_cache, run_algorithm
from repro.bench.common import DEVICE_SCALE, scale_device
from repro.gpusim import A100, V100
from repro.graph import random_bipartite


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestDispatch:
    @pytest.mark.parametrize(
        "algo", ["MBEA", "iMBEA", "PMBE", "ooMBEA", "ParMBE", "GMBE", "GMBE-HOST"]
    )
    def test_all_algorithms_run(self, algo):
        g = random_bipartite(15, 10, 0.3, seed=1)
        run = run_algorithm(algo, g)
        assert run.n_maximal > 0
        assert run.sim_seconds > 0
        assert run.wall_seconds >= 0

    def test_unknown_algorithm(self):
        g = random_bipartite(5, 5, 0.5, seed=0)
        with pytest.raises(ValueError):
            run_algorithm("quantum", g)

    def test_all_algorithms_agree(self):
        g = random_bipartite(25, 18, 0.25, seed=2)
        counts = {
            algo: run_algorithm(algo, g).n_maximal
            for algo in ("MBEA", "ooMBEA", "ParMBE", "GMBE")
        }
        assert len(set(counts.values())) == 1, counts

    def test_device_by_name(self):
        g = random_bipartite(10, 8, 0.4, seed=3)
        run = run_algorithm("GMBE", g, device="V100")
        assert run.result.extras["device"].name == "V100"


class TestMemoization:
    def test_cache_hit_returns_same_object(self):
        g = random_bipartite(12, 9, 0.3, seed=4)
        a = run_algorithm("ooMBEA", g, cache_key="k1")
        b = run_algorithm("ooMBEA", g, cache_key="k1")
        assert a is b

    def test_no_cache_without_key(self):
        g = random_bipartite(12, 9, 0.3, seed=4)
        a = run_algorithm("ooMBEA", g)
        b = run_algorithm("ooMBEA", g)
        assert a is not b

    def test_config_distinguishes_entries(self):
        from repro.gmbe import GMBEConfig

        g = random_bipartite(12, 9, 0.3, seed=4)
        a = run_algorithm("GMBE", g, cache_key="k", config=GMBEConfig())
        b = run_algorithm(
            "GMBE", g, cache_key="k", config=GMBEConfig(prune=False)
        )
        assert a is not b


class TestScaleDevice:
    def test_scales_sms(self):
        d = scale_device(A100, 8)
        assert d.n_sms == round(108 / 8)
        assert d.name == "A100/8"
        assert d.warps_per_sm == A100.warps_per_sm

    def test_factor_one_is_identity(self):
        assert scale_device(V100, 1) is V100

    def test_default_scale_sane(self):
        assert DEVICE_SCALE >= 1
