"""Tests for the vectorized local-neighborhood counter."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bicliques import Counters
from repro.core.localcount import LocalCounter, ragged_gather
from repro.graph import BipartiteGraph, random_bipartite


class TestRaggedGather:
    def test_basic(self):
        indptr = np.array([0, 2, 2, 5])
        indices = np.array([10, 11, 20, 21, 22])
        flat, lengths = ragged_gather(indptr, indices, np.array([0, 2]))
        assert flat.tolist() == [10, 11, 20, 21, 22]
        assert lengths.tolist() == [2, 3]

    def test_zero_length_rows(self):
        indptr = np.array([0, 2, 2, 5])
        indices = np.array([10, 11, 20, 21, 22])
        flat, lengths = ragged_gather(indptr, indices, np.array([1, 0, 1]))
        assert flat.tolist() == [10, 11]
        assert lengths.tolist() == [0, 2, 0]

    def test_empty_rows_arg(self):
        indptr = np.array([0, 2])
        indices = np.array([1, 2])
        flat, lengths = ragged_gather(indptr, indices, np.array([], dtype=np.int64))
        assert len(flat) == 0 and len(lengths) == 0

    def test_repeated_rows(self):
        indptr = np.array([0, 2])
        indices = np.array([7, 9])
        flat, _ = ragged_gather(indptr, indices, np.array([0, 0, 0]))
        assert flat.tolist() == [7, 9, 7, 9, 7, 9]


class TestLocalCounter:
    def brute(self, g: BipartiteGraph, left, cands):
        ls = set(left.tolist())
        return [
            len(ls & set(g.neighbors_v(int(v)).tolist())) for v in cands
        ]

    def test_paper_example(self, paper_graph):
        lc = LocalCounter(paper_graph)
        # node r of Fig. 5: L = {u1,u2,u3,u4}, candidates v3, v4
        left = np.array([0, 1, 2, 3])
        lc.set_left(left)
        counts, work = lc.counts(np.array([2, 3]))
        assert counts.tolist() == [3, 2]
        assert work == paper_graph.degree_v(2) + paper_graph.degree_v(3)

    def test_counts_match_bruteforce_random(self):
        g = random_bipartite(25, 18, 0.3, seed=5)
        lc = LocalCounter(g)
        rng = np.random.default_rng(0)
        for _ in range(20):
            left = rng.choice(25, size=rng.integers(0, 12), replace=False)
            left = np.sort(left)
            cands = np.sort(rng.choice(18, size=rng.integers(1, 10), replace=False))
            lc.set_left(left)
            counts, _ = lc.counts(cands)
            assert counts.tolist() == self.brute(g, left, cands)

    def test_version_isolation(self, paper_graph):
        lc = LocalCounter(paper_graph)
        lc.set_left(np.array([0, 1, 2, 3, 4]))
        lc.set_left(np.array([0]))  # new version must forget the old L
        counts, _ = lc.counts(np.array([1]))  # N(v2) ∩ {u1} = {u1}
        assert counts.tolist() == [1]

    def test_empty_left(self, paper_graph):
        lc = LocalCounter(paper_graph)
        lc.set_left(np.array([], dtype=np.int64))
        counts, _ = lc.counts(np.array([0, 1]))
        assert counts.tolist() == [0, 0]

    def test_empty_candidates(self, paper_graph):
        lc = LocalCounter(paper_graph)
        lc.set_left(np.array([0]))
        counts, work = lc.counts(np.array([], dtype=np.int64))
        assert len(counts) == 0 and work == 0

    def test_membership(self, paper_graph):
        lc = LocalCounter(paper_graph)
        lc.set_left(np.array([1, 3]))
        mask = lc.membership(np.array([0, 1, 2, 3, 4]))
        assert mask.tolist() == [False, True, False, True, False]

    def test_counters_charged(self, paper_graph):
        lc = LocalCounter(paper_graph)
        lc.set_left(np.array([0, 1]))
        c = Counters()
        _, work = lc.counts(np.array([0, 1, 2]), c)
        assert c.set_op_work == work > 0
        assert c.simt_cycles > 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_ragged_charge_matches_exact_ceil(self, n):
        """charge_ragged's closed form equals sum(ceil(l/32))."""
        rng = np.random.default_rng(n)
        lengths = rng.integers(0, 100, size=rng.integers(1, 20))
        c = Counters()
        c.charge_ragged(lengths)
        expected = int(np.ceil(lengths / 32).sum()) + 1
        assert c.simt_cycles == expected
