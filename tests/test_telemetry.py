"""Tests for the unified telemetry layer (`repro.telemetry`).

Covers the metrics registry and its exporters, span tracing with
context propagation, the pluggable sinks, the ServiceMetrics
compatibility shim, kernel phase attribution — and the acceptance
story: one broker job with injected faults whose spans, scheduler
tasks, fault events, and cache/retry records all share the same
``job_id``.
"""

import asyncio
import json
import re

import pytest

from repro.core import BicliqueCollector
from repro.gmbe import GMBEConfig, gmbe_gpu
from repro.gpusim.faults import FaultPlan
from repro.graph import random_bipartite
from repro.service import (
    EnumerationBroker,
    ResiliencePolicy,
    ServiceClient,
    ServiceMetrics,
)
from repro.telemetry import (
    CallbackSink,
    Counter,
    Gauge,
    Histogram,
    JSONLSink,
    MetricsRegistry,
    NULL_TRACER,
    RingSink,
    Telemetry,
    Tracer,
    current_span,
    current_telemetry,
    use_telemetry,
)

FAST_POLICY = ResiliencePolicy(
    timeout=30.0, max_attempts=3, backoff_base=0.001, backoff_jitter=0.0
)


# ----------------------------------------------------------------------
# Instruments and registry
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter(self):
        c = Counter("a.b")
        c.inc()
        c.add(4)
        assert c.value == 5 and c.snapshot() == 5
        c.reset()
        assert c.value == 0

    def test_gauge(self):
        g = Gauge("a.b")
        g.set(7.5)
        assert g.snapshot() == 7.5

    def test_histogram_percentiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.record(v)
        assert h.count == 100 and h.max == 100
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95
        snap = h.snapshot()
        assert snap["p99"] == 99 and snap["mean"] == pytest.approx(50.5)

    def test_histogram_window_bounds_memory(self):
        h = Histogram(window=10)
        for v in range(1000):
            h.record(v)
        # lifetime stats cover everything; percentiles only the window
        assert h.count == 1000
        assert h.percentile(0) == 990

    def test_histogram_rejects_bad_args(self):
        with pytest.raises(ValueError):
            Histogram(window=0)
        with pytest.raises(ValueError):
            Histogram().percentile(101)


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert "a.b" in reg and len(reg) == 1

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a.b")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "A.b", "a..b", "a.b-", "1a", "a.B"):
            with pytest.raises(ValueError, match="invalid metric name"):
                reg.counter(bad)

    def test_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("jobs.done").add(3)
        reg.histogram("lat").record(10.0)
        snap = reg.snapshot()
        assert snap["jobs.done"] == 3 and snap["lat"]["count"] == 1
        json.dumps(snap)  # JSON-serializable
        reg.reset()
        assert reg.snapshot()["jobs.done"] == 0

    def test_prometheus_text_parses(self):
        reg = MetricsRegistry()
        reg.counter("service.jobs.submitted").add(2)
        reg.gauge("service.queue.size").set(1)
        reg.histogram("service.latency_ms").record(3.5)
        text = reg.to_prometheus_text()
        assert text.endswith("\n")
        name_re = re.compile(r'^[a-z_][a-z0-9_]*(\{quantile="[0-9.]+"\})?$')
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# TYPE [a-z_][a-z0-9_]* "
                                r"(counter|gauge|summary)$", line)
            else:
                name, value = line.rsplit(" ", 1)
                float(value)  # parses
                assert name_re.match(name), name
        assert "service_jobs_submitted 2" in text
        assert 'service_latency_ms{quantile="0.5"} 3.5' in text
        assert "service_latency_ms_count 1" in text


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_and_inheritance(self):
        ring = RingSink()
        tracer = Tracer([ring])
        with tracer.span("outer", job_id=9) as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
                assert inner.job_id == 9
        assert current_span() is None
        inner_rec, outer_rec = ring.records()
        assert inner_rec["name"] == "inner"  # children finish first
        assert outer_rec["duration_s"] >= inner_rec["duration_s"]

    def test_error_marks_span(self):
        ring = RingSink()
        tracer = Tracer([ring])
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        rec = ring.spans("boom")[0]
        assert rec["status"] == "error" and "nope" in rec["error"]

    def test_event_correlates_with_current_span(self):
        ring = RingSink()
        tracer = Tracer([ring])
        with tracer.span("work", job_id=3) as span:
            tracer.event("thing.happened", detail=1)
        ev = ring.events("thing.happened")[0]
        assert ev["span_id"] == span.span_id
        assert ev["job_id"] == 3 and ev["attrs"]["detail"] == 1

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.is_enabled is False
        cm1 = NULL_TRACER.span("anything", job_id=1, foo=2)
        cm2 = NULL_TRACER.span("else")
        assert cm1 is cm2  # one shared no-op object, no allocation
        with cm1 as span:
            span.set_attr("ignored", True)
            assert span.span_id is None
        NULL_TRACER.event("ignored")

    def test_span_counts_tally(self):
        tracer = Tracer([])
        for _ in range(3):
            with tracer.span("x"):
                pass
        assert tracer.span_counts["x"] == 3


class TestSinks:
    def test_ring_capacity(self):
        ring = RingSink(capacity=2)
        for i in range(5):
            ring.emit({"type": "event", "name": str(i)})
        assert ring.emitted == 5 and len(ring) == 2
        assert [r["name"] for r in ring.records()] == ["3", "4"]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JSONLSink(path)
        sink.emit({"type": "span", "name": "a"})
        assert not path.exists()  # buffered until flush
        sink.flush()
        sink.emit({"type": "span", "name": "b"})
        sink.close()
        names = [json.loads(l)["name"] for l in path.read_text().splitlines()]
        assert names == ["a", "b"] and sink.written == 2

    def test_callback_sink_swallows_errors(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit({"ok": 1})
        bad = CallbackSink(lambda r: 1 / 0)
        bad.emit({"ok": 1})
        assert seen == [{"ok": 1}] and bad.errors == 1


class TestTelemetryFacade:
    def test_defaults_and_snapshot(self):
        t = Telemetry()
        assert t.enabled and t.ring is not None
        with t.tracer.span("s"):
            pass
        snap = t.snapshot()
        assert snap["enabled"] and len(snap["records"]) == 1
        json.dumps(snap)

    def test_disabled_uses_null_tracer(self):
        t = Telemetry(enabled=False)
        assert t.tracer is NULL_TRACER and t.ring is None
        assert t.snapshot() == {"enabled": False, "metrics": {}, "records": []}

    def test_ambient_propagation(self):
        t = Telemetry()
        assert current_telemetry() is None
        with use_telemetry(t):
            assert current_telemetry() is t
        assert current_telemetry() is None


# ----------------------------------------------------------------------
# ServiceMetrics compatibility shim
# ----------------------------------------------------------------------
class TestServiceMetricsShim:
    def test_attributes_are_registry_backed(self):
        m = ServiceMetrics()
        m.submitted += 2
        m.cache_hits += 1
        assert m.registry.get("service.jobs.submitted").value == 2
        assert m.registry.get("service.cache.hits").value == 1
        m.registry.counter("service.jobs.submitted").inc()
        assert m.submitted == 3

    def test_snapshot_keeps_historical_shape(self):
        m = ServiceMetrics()
        m.completed += 1
        m.latency_ms.record(12.0)
        snap = m.snapshot()
        assert snap["counters"]["completed"] == 1
        assert snap["latency_ms"]["count"] == 1
        assert set(snap) == {
            "counters", "latency_ms", "cache_hit_latency_ms", "queue_depth"
        }

    def test_shared_registry(self):
        reg = MetricsRegistry()
        m = ServiceMetrics(registry=reg)
        m.failed += 1
        assert reg.snapshot()["service.jobs.failed"] == 1

    def test_reset(self):
        m = ServiceMetrics()
        m.submitted += 5
        m.latency_ms.record(1.0)
        m.reset()
        assert m.submitted == 0 and m.latency_ms.count == 0


# ----------------------------------------------------------------------
# Kernel phase attribution
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_graph():
    return random_bipartite(40, 40, 0.15, seed=1)


SPLITTY = GMBEConfig(scheduling="task", bound_height=2, bound_size=4)


class TestKernelTelemetry:
    def test_phase_counters_and_span(self, small_graph):
        t = Telemetry()
        res = gmbe_gpu(small_graph, config=SPLITTY, telemetry=t)
        reg = t.registry
        phases = {
            n: reg.get(n).value for n in reg.names()
            if n.startswith("sim.phase.")
        }
        assert phases["sim.phase.set_op_cycles"] > 0
        assert phases["sim.phase.queue_acquire_cycles"] > 0
        assert phases["sim.phase.split_cycles"] > 0
        assert reg.get("sim.tasks.executed").value == (
            res.extras["report"].tasks_executed
        )
        assert reg.get("sim.queue.device_depth").count > 0
        span = t.ring.spans("sim.kernel")[0]
        assert span["attrs"]["tasks_executed"] > 0
        assert span["status"] == "ok"

    def test_disabled_telemetry_is_noop(self, small_graph):
        t = Telemetry(enabled=False)
        res = gmbe_gpu(small_graph, telemetry=t)
        assert res.extras["report"].phase_cycles is None
        assert t.registry.snapshot() == {}

    def test_no_telemetry_collects_nothing(self, small_graph):
        res = gmbe_gpu(small_graph)
        report = res.extras["report"]
        assert report.phase_cycles is None
        assert report.queue_depth_samples == []
        assert report.split_events == []

    def test_ambient_discovery(self, small_graph):
        t = Telemetry()
        with use_telemetry(t):
            gmbe_gpu(small_graph)
        assert t.ring.spans("sim.kernel")

    def test_results_identical_with_and_without(self, small_graph):
        base = gmbe_gpu(small_graph, config=SPLITTY)
        traced = gmbe_gpu(small_graph, config=SPLITTY, telemetry=Telemetry())
        assert traced.n_maximal == base.n_maximal
        assert traced.sim_time == base.sim_time

    def test_fault_events_carry_kernel_span(self, small_graph):
        t = Telemetry()
        plan = FaultPlan(
            seed=3, p_warp_hang=0.03, p_queue_drop=0.05, max_faults=10
        )
        res = gmbe_gpu(small_graph, config=SPLITTY, fault_plan=plan,
                       telemetry=t)
        log = res.extras["fault_log"]
        assert len(log) > 0
        span = t.ring.spans("sim.kernel")[0]
        for ev in log.events:
            assert ev.span_id == span["span_id"]
        fault_events = [
            e for e in t.ring.events() if e["name"].startswith("fault.")
        ]
        assert len(fault_events) == len(log)
        for ev in fault_events:
            assert ev["span_id"] == span["span_id"]


# ----------------------------------------------------------------------
# Service integration: the correlated story
# ----------------------------------------------------------------------
def run_broker(coro_fn, **broker_kwargs):
    broker_kwargs.setdefault("policy", FAST_POLICY)

    async def go():
        broker = EnumerationBroker(**broker_kwargs)
        await broker.start()
        try:
            return await coro_fn(broker)
        finally:
            await broker.stop()

    return asyncio.run(go())


def faulty_gmbe_runner(job, graph, config):
    """Real GMBE enumeration with deterministic fault injection."""
    collector = BicliqueCollector()
    plan = FaultPlan(
        seed=7, p_warp_hang=0.03, p_queue_drop=0.08, max_faults=8
    )
    gmbe_gpu(graph, collector, config=SPLITTY, fault_plan=plan)
    out = list(collector.bicliques)
    out.sort()
    return out


class TestServiceTelemetry:
    def test_correlated_story(self, small_graph):
        """One faulty broker job: every span, scheduler task, fault
        event, and retry attempt shares the job's correlation id."""
        telemetry = Telemetry()

        async def go(broker):
            from repro.service import Job

            return await broker.submit(
                Job(graph=small_graph, algorithm="gmbe")
            )

        result = run_broker(
            go, n_workers=1, runner=faulty_gmbe_runner, telemetry=telemetry
        )
        assert result.ok
        job_id = result.job_id

        ring = telemetry.ring
        dispatch = ring.spans("broker.dispatch")[0]
        lookup = ring.spans("cache.lookup")[0]
        attempt = ring.spans("retry.attempt")[0]
        kernel = ring.spans("sim.kernel")[0]

        # one trace, one job id, parent-child chain across the thread hop
        assert dispatch["job_id"] == job_id
        assert lookup["job_id"] == job_id
        assert attempt["job_id"] == job_id
        assert kernel["job_id"] == job_id
        assert attempt["parent_id"] == dispatch["span_id"]
        assert kernel["parent_id"] == attempt["span_id"]
        assert kernel["trace_id"] == dispatch["trace_id"]

        # fault + requeue + split events correlate to the kernel span
        events = ring.events()
        fault_events = [e for e in events if e["name"].startswith("fault.")]
        assert fault_events, "the fault plan fired nothing"
        assert any(e["name"] == "fault.requeue" for e in events)
        for ev in fault_events:
            assert ev["job_id"] == job_id
            assert ev["span_id"] == kernel["span_id"]

        # service + sim metrics share one registry; prometheus parses
        reg = telemetry.registry
        assert reg.get("service.jobs.completed").value == 1
        assert reg.get("sim.tasks.executed").value > 0
        assert reg.get("sim.faults.total").value == len(fault_events)
        text = reg.to_prometheus_text()
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])

    def test_client_telemetry_snapshot(self):
        import numpy as np

        matrix = np.array([[1, 1], [1, 1]], dtype=np.int8)
        telemetry = Telemetry()
        with ServiceClient(
            n_workers=1, policy=FAST_POLICY, telemetry=telemetry
        ) as client:
            client.submit(graph=matrix, algorithm="gmbe-host")
            snap = client.telemetry_snapshot()
        assert snap["enabled"]
        assert snap["metrics"]["service.jobs.completed"] == 1
        assert any(r["name"] == "broker.dispatch" for r in snap["records"])
        json.dumps(snap)

    def test_client_snapshot_without_telemetry(self):
        import numpy as np

        matrix = np.array([[1, 1], [1, 1]], dtype=np.int8)
        with ServiceClient(n_workers=1, policy=FAST_POLICY) as client:
            client.submit(graph=matrix, algorithm="gmbe-host")
            snap = client.telemetry_snapshot()
        assert snap["enabled"] is False and snap["records"] == []
        assert snap["metrics"]["service.jobs.completed"] == 1

    def test_broker_flusher_writes_jsonl(self, tmp_path, small_graph):
        path = tmp_path / "spans.jsonl"
        telemetry = Telemetry(sinks=[RingSink(), JSONLSink(path)])

        async def go(broker):
            from repro.service import Job

            return await broker.submit(
                Job(graph=small_graph, algorithm="gmbe-host")
            )

        result = run_broker(go, n_workers=1, telemetry=telemetry)
        assert result.ok
        # broker.stop() forces a final flush
        names = {
            json.loads(line)["name"]
            for line in path.read_text().splitlines()
        }
        assert "broker.dispatch" in names

    def test_rejects_bad_flush_interval(self):
        with pytest.raises(ValueError):
            EnumerationBroker(
                telemetry=Telemetry(), telemetry_flush_interval=0
            )
