"""Tests for graph statistics (Δ, Δ2, Table 1 rows, memory bounds)."""

import numpy as np

from repro.graph import (
    BipartiteGraph,
    complete_bipartite,
    compute_stats,
    max_degree_u,
    max_degree_v,
    max_two_hop_degree_u,
    max_two_hop_degree_v,
    two_hop_neighbors_u,
    two_hop_neighbors_v,
)


class TestTwoHop:
    def test_paper_graph(self, paper_graph):
        # u1 (index 0) connects to v1,v2,v3 whose neighbors cover u1..u4.
        assert two_hop_neighbors_u(paper_graph, 0).tolist() == [1, 2, 3]
        # v1 (index 0): N={u1,u2}; their neighborhoods cover v1..v4.
        assert two_hop_neighbors_v(paper_graph, 0).tolist() == [1, 2, 3]

    def test_isolated_vertex(self):
        g = BipartiteGraph.from_edges(2, 2, [(0, 0)])
        assert two_hop_neighbors_u(g, 1).tolist() == []

    def test_excludes_self(self, paper_graph):
        for u in range(paper_graph.n_u):
            assert u not in two_hop_neighbors_u(paper_graph, u).tolist()

    def test_complete_graph(self):
        g = complete_bipartite(4, 3)
        for u in range(4):
            assert two_hop_neighbors_u(g, u).tolist() == [x for x in range(4) if x != u]


class TestMaxDegrees:
    def test_paper_graph(self, paper_graph):
        assert max_degree_u(paper_graph) == 4  # u2
        assert max_degree_v(paper_graph) == 4  # v2
        assert max_two_hop_degree_u(paper_graph) == 4
        assert max_two_hop_degree_v(paper_graph) == 3

    def test_empty(self):
        g = BipartiteGraph.from_edges(3, 3, [])
        assert max_degree_u(g) == 0
        assert max_two_hop_degree_v(g) == 0


class TestGraphStats:
    def test_row_fields(self, paper_graph):
        s = compute_stats(paper_graph)
        assert (s.n_u, s.n_v, s.n_edges) == (5, 4, 12)
        assert s.max_deg_v == 4 and s.max_two_hop_v == 3

    def test_memory_bounds_formulas(self, paper_graph):
        s = compute_stats(paper_graph)
        assert s.node_buffer_words() == 3 * 4 + 2 * 3
        assert s.naive_tree_words() == 4 * (4 + 3)

    def test_bookcrossing_arithmetic_from_paper(self):
        """§3.1/§4.1 arithmetic: with Δ(V)=13601, Δ2(V)=53915 the naive
        layout needs 3.67 GB and node reuse ~595 KB (sizeof int = 4)."""
        from repro.graph.stats import GraphStats

        s = GraphStats("BX", 340523, 105278, 1149739, 2502, 151645, 13601, 53915)
        assert abs(s.naive_tree_words() * 4 / 1024**3 - 3.67) < 0.25
        assert abs(s.node_buffer_words() * 4 / 1024 - 595) < 20
