"""Shared fixtures: the paper's example graph and generator helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import BipartiteGraph


@pytest.fixture
def paper_graph() -> BipartiteGraph:
    """The paper's Fig. 1 graph G0: 5 U-vertices, 4 V-vertices,
    6 maximal bicliques (u_i -> index i-1, v_j -> index j-1)."""
    adjacency = {0: [0, 1], 1: [0, 1, 2, 3], 2: [0, 1, 3], 3: [1, 3, 4]}
    edges = [(u, v) for v, us in adjacency.items() for u in us]
    return BipartiteGraph.from_edges(5, 4, edges, name="G0")


@pytest.fixture
def tiny_path() -> BipartiteGraph:
    """u0-v0-u1-v1 path: maximal bicliques ({u0,u1},{v0}), ({u1},{v0,v1})."""
    return BipartiteGraph.from_edges(2, 2, [(0, 0), (1, 0), (1, 1)], name="path")


def make_random(n_u: int, n_v: int, p: float, seed: int) -> BipartiteGraph:
    from repro.graph import random_bipartite

    return random_bipartite(n_u, n_v, p, seed=seed)
