"""Shared fixtures: the paper's example graph and generator helpers.

Also arms :mod:`faulthandler` for the whole session: if a test (most
likely one of the supervision/chaos tests, which juggle real spawned
processes and SIGKILL) wedges, every thread's stack is dumped to stderr
after ``GMBE_TEST_DUMP_AFTER`` seconds (default 300) and repeatedly
thereafter — so a hung CI job leaves a diagnosis, not just a timeout.
"""

from __future__ import annotations

import faulthandler
import os

import numpy as np
import pytest

from repro.graph import BipartiteGraph

_DUMP_AFTER = float(os.environ.get("GMBE_TEST_DUMP_AFTER", "300"))


def pytest_configure(config) -> None:
    if _DUMP_AFTER > 0:
        faulthandler.dump_traceback_later(_DUMP_AFTER, repeat=True)


def pytest_unconfigure(config) -> None:
    faulthandler.cancel_dump_traceback_later()


@pytest.fixture
def paper_graph() -> BipartiteGraph:
    """The paper's Fig. 1 graph G0: 5 U-vertices, 4 V-vertices,
    6 maximal bicliques (u_i -> index i-1, v_j -> index j-1)."""
    adjacency = {0: [0, 1], 1: [0, 1, 2, 3], 2: [0, 1, 3], 3: [1, 3, 4]}
    edges = [(u, v) for v, us in adjacency.items() for u in us]
    return BipartiteGraph.from_edges(5, 4, edges, name="G0")


@pytest.fixture
def tiny_path() -> BipartiteGraph:
    """u0-v0-u1-v1 path: maximal bicliques ({u0,u1},{v0}), ({u1},{v0,v1})."""
    return BipartiteGraph.from_edges(2, 2, [(0, 0), (1, 0), (1, 1)], name="path")


def make_random(n_u: int, n_v: int, p: float, seed: int) -> BipartiteGraph:
    from repro.graph import random_bipartite

    return random_bipartite(n_u, n_v, p, seed=seed)
