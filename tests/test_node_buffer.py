"""Tests for the node-reuse NodeBuffer (paper §4.1, Fig. 5)."""

import numpy as np
import pytest

from repro.core.bicliques import Counters
from repro.core.localcount import LocalCounter
from repro.core.tasks import build_root_task
from repro.gmbe.node_buffer import INF_DEPTH, NodeBuffer
from repro.graph import BipartiteGraph, random_bipartite
from repro.graph.preprocess import prepare


def make_buffer(graph, v_s, *, prune=True):
    lc = LocalCounter(graph)
    task = build_root_task(graph, lc, v_s)
    assert task is not None
    buf = NodeBuffer(
        graph, lc, task.left, task.right, task.cands, task.counts, prune=prune
    )
    return buf, task


class TestFigure5Walkthrough:
    """Reproduce the paper's Fig. 5 on G0's subtree rooted at node r."""

    @pytest.fixture
    def buf(self, paper_graph):
        # Node r: L = {u1,u2,u3,u4}, R = {v2}, C = {v3, v4}; reached by
        # traversing v2 at the root.  Indices are 0-based.
        lc = LocalCounter(paper_graph)
        left = np.array([0, 1, 2, 3], dtype=np.int32)
        right = np.array([1], dtype=np.int32)
        cands = np.array([2, 3], dtype=np.int32)
        counts = np.array([3, 2], dtype=np.int64)  # |NL(v3)|=3, |NL(v4)|=2
        return NodeBuffer(paper_graph, lc, left, right, cands, counts)

    def test_initial_state(self, buf):
        assert buf.depth == 0
        assert buf.current_left().tolist() == [0, 1, 2, 3]
        assert buf.current_right().tolist() == [1]
        assert buf.nls.tolist() == [3, 2]

    def test_push_v3_matches_figure(self, buf):
        out = buf.push(0)  # traverse v3 -> node s
        assert out.maximal
        assert buf.current_left().tolist() == [0, 1, 3]   # {u1,u2,u4}
        assert buf.current_right().tolist() == [1, 2]     # {v2,v3}
        # Fig. 5: |NL(v3)| stays 3, |NL(v4)| stays 2 at node s
        assert buf.nls.tolist() == [3, 2]
        assert buf.depth == 1

    def test_push_v4_from_s_reaches_t(self, buf):
        buf.push(0)
        out = buf.push(1)  # traverse v4 -> node t
        assert out.maximal
        assert buf.current_left().tolist() == [1, 3]       # {u2,u4}
        assert buf.current_right().tolist() == [1, 2, 3]   # {v2,v3,v4}

    def test_pop_restores_parent(self, buf):
        buf.push(0)
        buf.push(1)
        buf.pop()
        assert buf.current_left().tolist() == [0, 1, 3]
        assert buf.current_right().tolist() == [1, 2]
        buf.pop()
        assert buf.current_left().tolist() == [0, 1, 2, 3]
        assert buf.current_right().tolist() == [1]
        assert buf.nls.tolist() == [3, 2]

    def test_prune_kills_t1(self, buf):
        """Fig. 5's punchline: after popping node s, v4's unchanged local
        neighborhood size (2) prunes node t1 at node r."""
        buf.push(0)   # node s; |NL(v4)| unchanged at 2 -> pending prune
        buf.pop()     # back at r: v3 excluded, v4 pruned
        assert buf.next_candidate() is None
        assert buf.counters.pruned == 1

    def test_without_prune_t1_visited_nonmaximal(self, paper_graph):
        lc = LocalCounter(paper_graph)
        buf = NodeBuffer(
            paper_graph,
            lc,
            np.array([0, 1, 2, 3], dtype=np.int32),
            np.array([1], dtype=np.int32),
            np.array([2, 3], dtype=np.int32),
            np.array([3, 2], dtype=np.int64),
            prune=False,
        )
        buf.push(0)
        buf.pop()
        idx = buf.next_candidate()
        assert idx == 1  # v4 still a candidate
        out = buf.push(idx)
        assert not out.maximal  # node t1 is non-maximal


class TestInvariants:
    def test_push_pop_roundtrip_preserves_state(self):
        g = prepare(random_bipartite(20, 14, 0.35, seed=1)).graph
        for v_s in range(g.n_v):
            lc = LocalCounter(g)
            task = build_root_task(g, lc, v_s)
            if task is None or len(task.cands) == 0:
                continue
            buf = NodeBuffer(g, lc, task.left, task.right, task.cands, task.counts)
            before = (
                buf.depth_l.copy(),
                buf.cand_state.copy(),
                buf.nls.copy(),
                buf.current_right().tolist(),
            )
            idx = buf.next_candidate()
            buf.push(idx)
            buf.pop()
            assert np.array_equal(buf.depth_l, before[0])
            # the traversed candidate is now excluded; everything else equal
            diff = np.nonzero(buf.cand_state != before[1])[0]
            expect_changed = {idx}
            if buf.counters.pruned:
                assert set(diff.tolist()) >= expect_changed
            else:
                assert set(diff.tolist()) == expect_changed
            assert np.array_equal(buf.nls, before[2])
            assert buf.current_right().tolist() == before[3]

    def test_push_non_candidate_rejected(self, paper_graph):
        buf, _ = make_buffer(prepare(paper_graph).graph, 0)
        if buf.next_candidate() is None:
            pytest.skip("no candidates")
        idx = buf.next_candidate()
        buf.push(idx)
        with pytest.raises(ValueError):
            buf.push(idx)

    def test_pop_from_root_raises(self, paper_graph):
        buf, _ = make_buffer(prepare(paper_graph).graph, 0)
        with pytest.raises(IndexError):
            buf.pop()

    def test_memory_words_matches_bound(self):
        g = prepare(random_bipartite(30, 20, 0.3, seed=2)).graph
        lc = LocalCounter(g)
        for v_s in range(g.n_v):
            task = build_root_task(g, lc, v_s)
            if task is None:
                continue
            buf = NodeBuffer(g, lc, task.left, task.right, task.cands, task.counts)
            assert buf.memory_words() == 3 * len(task.left) + 3 * len(task.cands)

    def test_right_size_tracks_current_right(self):
        g = prepare(random_bipartite(25, 16, 0.4, seed=3)).graph
        buf, task = make_buffer(g, 0)
        # walk a few pushes and check _right_size consistency
        steps = 0
        while steps < 10:
            idx = buf.next_candidate()
            if idx is None:
                if buf.depth == 0:
                    break
                buf.pop()
                continue
            out = buf.push(idx)
            assert out.right_size == len(buf.current_right())
            if not out.maximal:
                buf.pop()
            steps += 1
