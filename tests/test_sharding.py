"""Sharded enumeration: ownership, merge, resume, and integration.

The load-bearing invariant: for ANY shard count and ANY graph, the
stream-merged union of per-shard results is bit-identical to the
single-node enumeration, with ownership sets pairwise disjoint — zero
duplicates by construction, never by deduplication.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import enumerate_maximal_bicliques
from repro.core import BicliqueCollector
from repro.datasets.registry import load
from repro.gmbe import ClusterSpec, GMBEConfig, gmbe_gpu
from repro.gpusim.faults import FaultPlan
from repro.graph import BipartiteGraph, random_bipartite
from repro.sharding import (
    BALANCERS,
    ShardCoordinator,
    ShardMergeError,
    ShardPlan,
    ShardResult,
    ShardRunner,
    merge_shard_results,
    root_weights,
)

CFG = GMBEConfig()


def _reference(graph, config=CFG):
    col = BicliqueCollector()
    gmbe_gpu(graph, col, config=config)
    return sorted(col.bicliques)


@pytest.fixture(scope="module")
def graph():
    return random_bipartite(40, 32, 0.18, seed=11)


@pytest.fixture(scope="module")
def reference(graph):
    return _reference(graph)


# ----------------------------------------------------------------------
# ShardPlan
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_ownership_is_a_partition(self, graph):
        plan = ShardPlan.build(graph, 4)
        masks = [plan.mask(i) for i in range(4)]
        # pairwise disjoint and jointly complete over the prepared V space
        stacked = np.stack(masks)
        assert (stacked.sum(axis=0) == 1).all()
        assert sum(len(plan.owned(i)) for i in range(4)) == plan.n_roots

    @pytest.mark.parametrize("balancer", BALANCERS)
    def test_every_balancer_partitions(self, graph, balancer):
        plan = ShardPlan.build(graph, 3, balancer=balancer)
        stacked = np.stack([plan.mask(i) for i in range(3)])
        assert (stacked.sum(axis=0) == 1).all()

    def test_greedy_balances_better_than_round_robin(self):
        # A skewed graph: hub vertices dominate; LPT must not lump them.
        g = load("TM")
        greedy = ShardPlan.build(g, 4, balancer="greedy")
        rr = ShardPlan.build(g, 4, balancer="round-robin")
        assert greedy.imbalance() <= rr.imbalance() + 1e-9

    @pytest.mark.parametrize(
        "bad", [0, -1, True, 2.0, "4"], ids=["zero", "neg", "bool", "float", "str"]
    )
    def test_bad_n_shards_rejected(self, graph, bad):
        with pytest.raises(ValueError, match="n_shards"):
            ShardPlan.build(graph, bad)

    def test_unknown_balancer_rejected(self, graph):
        with pytest.raises(ValueError, match="balancer"):
            ShardPlan.build(graph, 2, balancer="optimal")

    def test_bad_shard_id_rejected(self, graph):
        plan = ShardPlan.build(graph, 2)
        for bad in (-1, 2, True, "0"):
            with pytest.raises(ValueError, match="shard_id"):
                plan.mask(bad)

    def test_signature_covers_partition_identity(self, graph):
        a = ShardPlan.build(graph, 4)
        assert a.signature() == ShardPlan.build(graph, 4).signature()
        assert a.signature() != ShardPlan.build(graph, 5).signature()
        assert (
            a.signature()
            != ShardPlan.build(graph, 4, balancer="round-robin").signature()
        )
        other = random_bipartite(40, 32, 0.18, seed=12)
        assert a.signature() != ShardPlan.build(other, 4).signature()

    def test_validate_against_wrong_graph(self, graph):
        plan = ShardPlan.build(graph, 2)
        other = random_bipartite(10, 10, 0.3, seed=5)
        with pytest.raises(ValueError, match="rebuild the plan"):
            plan.validate_against(other)

    def test_weights_are_positive(self, graph):
        from repro.graph.preprocess import prepare

        w = root_weights(prepare(graph, order="degree").graph)
        assert (w > 0).all()

    def test_more_shards_than_roots_leaves_some_empty(self):
        g = BipartiteGraph.from_edges(2, 2, [(0, 0), (1, 1)])
        plan = ShardPlan.build(g, 8)
        sizes = [len(plan.owned(i)) for i in range(8)]
        assert sum(sizes) == plan.n_roots
        assert 0 in sizes


# ----------------------------------------------------------------------
# Union invariant
# ----------------------------------------------------------------------
class TestUnionInvariant:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
    def test_union_bit_identical(self, graph, reference, n_shards):
        report = ShardCoordinator(graph, n_shards).run()
        assert report.bicliques == reference
        assert len(report.bicliques) == len(set(report.bicliques))

    @pytest.mark.parametrize("balancer", BALANCERS)
    def test_union_invariant_per_balancer(self, graph, reference, balancer):
        report = ShardCoordinator(graph, 3, balancer=balancer).run()
        assert report.bicliques == reference

    @pytest.mark.parametrize("order", ["degree", "degeneracy", "none"])
    def test_union_invariant_per_order(self, graph, reference, order):
        cfg = CFG.with_(order=order)
        report = ShardCoordinator(graph, 4, config=cfg).run()
        assert report.bicliques == sorted(_reference(graph, cfg))
        assert report.bicliques == reference  # order never changes the set

    def test_counters_aggregate_exactly(self, graph):
        col = BicliqueCollector()
        single = gmbe_gpu(graph, col, config=CFG)
        report = ShardCoordinator(graph, 4).run()
        # Work counters are partitioned with the roots: shard totals
        # must reconstruct the single-run totals exactly.
        assert report.counters.maximal == single.counters.maximal
        assert report.counters.non_maximal == single.counters.non_maximal
        assert report.counters.nodes_generated == single.counters.nodes_generated

    def test_runner_pins_plan_order(self, graph):
        plan = ShardPlan.build(graph, 2, order="degree")
        runner = ShardRunner(
            graph, plan, 0, config=CFG.with_(order="none")
        )
        assert runner.config.order == "degree"

    def test_cluster_placement_same_results(self, graph, reference):
        cluster = ClusterSpec(n_nodes=2, gpus_per_node=1)
        report = ShardCoordinator(graph, 4, cluster=cluster).run()
        assert report.bicliques == reference
        # 4 shards round-robin onto 2 GPUs, serial per GPU
        assert report.placement == [0, 1, 0, 1]
        per = report.extras["per_shard_seconds"]
        expect = max(per[0] + per[2], per[1] + per[3])
        assert report.sim_time == pytest.approx(expect)


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
class TestMerge:
    def _result(self, shard_id, bicliques):
        from repro.core.bicliques import Counters

        return ShardResult(
            shard_id=shard_id,
            n_shards=2,
            bicliques=sorted(bicliques),
            counters=Counters(),
            sim_time=0.0,
            owned_roots=len(bicliques),
        )

    def test_merge_is_ordered_union(self):
        from repro.core.bicliques import Biclique

        b1 = Biclique.make([0], [0])
        b2 = Biclique.make([1], [1])
        b3 = Biclique.make([0, 1], [2])
        merged = merge_shard_results(
            [self._result(0, [b3, b1]), self._result(1, [b2])]
        )
        assert merged == sorted([b1, b2, b3])

    def test_duplicate_across_shards_refused(self):
        from repro.core.bicliques import Biclique

        dup = Biclique.make([0], [0])
        with pytest.raises(ShardMergeError, match="shards 0 and 1"):
            merge_shard_results(
                [self._result(0, [dup]), self._result(1, [dup])]
            )


# ----------------------------------------------------------------------
# Crash / resume
# ----------------------------------------------------------------------
class TestCrashResume:
    def test_crash_one_shard_resumes_alone(self, graph, reference, tmp_path):
        ckpt_dir = str(tmp_path / "shards")
        crashed = 1
        first = ShardCoordinator(
            graph, 4,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=1,
            halt_after_tasks={crashed: 2},
        ).run()
        assert first.halted
        assert first.shards[crashed].halted
        # only the crashed shard left a snapshot behind
        leftovers = [f for f in os.listdir(ckpt_dir) if f.endswith(".ckpt")]
        assert len(leftovers) == 1
        assert f"{crashed:04d}of4" in leftovers[0]

        second = ShardCoordinator(
            graph, 4, checkpoint_dir=ckpt_dir, checkpoint_every=1
        ).run()
        assert not second.halted
        assert second.extras["resumed_shards"] == [crashed]
        assert second.bicliques == reference
        assert len(second.bicliques) == len(set(second.bicliques))
        # clean completion erases the snapshot
        assert not any(
            f.endswith(".ckpt") for f in os.listdir(ckpt_dir)
        )

    def test_faulty_shard_still_exact(self, graph, reference):
        plans = {
            2: FaultPlan(7, p_sm_crash=0.05, p_warp_hang=0.05,
                         p_queue_drop=0.05, p_mem_pressure=0.05),
        }
        report = ShardCoordinator(graph, 4, fault_plans=plans).run()
        assert report.bicliques == reference
        assert report.shards[2].extras.get("tasks_requeued", 0) >= 0

    def test_checkpoints_are_plan_scoped(self, graph, tmp_path):
        plan4 = ShardPlan.build(graph, 4)
        plan2 = ShardPlan.build(graph, 2)
        r4 = ShardRunner(graph, plan4, 0, checkpoint_dir=str(tmp_path))
        r2 = ShardRunner(graph, plan2, 0, checkpoint_dir=str(tmp_path))
        assert r4.checkpoint_path != r2.checkpoint_path

    def test_worker_crash_carries_shard_label(self, graph, monkeypatch):
        import repro.sharding.coordinator as coord_mod

        def boom(self):
            raise RuntimeError("synthetic shard failure")

        monkeypatch.setattr(coord_mod.ShardRunner, "run", boom)
        with pytest.raises(RuntimeError, match="synthetic") as excinfo:
            ShardCoordinator(graph, 3).run()
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("shard" in n for n in notes)


# ----------------------------------------------------------------------
# Integration: api / service / CLI / telemetry
# ----------------------------------------------------------------------
class TestIntegration:
    def test_api_shards_equal_single(self, graph):
        base = enumerate_maximal_bicliques(graph)
        assert enumerate_maximal_bicliques(graph, shards=3) == base

    def test_api_validates_shards(self, graph):
        for bad in (0, -2, True, 1.5):
            with pytest.raises(ValueError, match="shards"):
                enumerate_maximal_bicliques(graph, shards=bad)
        with pytest.raises(ValueError, match="gmbe"):
            enumerate_maximal_bicliques(graph, algorithm="mbea", shards=2)
        with pytest.raises(ValueError, match="fault_plan"):
            enumerate_maximal_bicliques(
                graph, shards=2, fault_plan=FaultPlan(1, p_sm_crash=0.1)
            )

    def test_job_validates_shards(self, graph):
        from repro.service import Job

        with pytest.raises(ValueError, match="shards"):
            Job(graph=graph, shards=0)
        with pytest.raises(ValueError, match="gmbe"):
            Job(graph=graph, algorithm="mbea", shards=2)

    def test_broker_shards_share_logical_cache_key(self, graph):
        from repro.service import ServiceClient

        with ServiceClient(n_workers=2) as client:
            sharded = client.submit(graph=graph, algorithm="gmbe", shards=2)
            plain = client.submit(graph=graph, algorithm="gmbe")
            assert sharded.ok and plain.ok
            assert tuple(sharded.bicliques) == tuple(plain.bicliques)
            assert plain.cache_hit
            snap = client.metrics_snapshot()
            assert snap["counters"]["sharded"] == 1

    def test_broker_auto_shard_policy(self, graph):
        from repro.service import ServiceClient

        with ServiceClient(
            n_workers=2, auto_shard_over_edges=0, auto_shard_count=2
        ) as client:
            res = client.submit(graph=graph, algorithm="gmbe")
            assert res.ok
            assert client.metrics_snapshot()["counters"]["sharded"] == 1

    def test_cli_run_shards(self, capsys):
        from repro.cli import main

        assert main(["run", "Mti", "--shards", "4"]) == 0
        sharded = capsys.readouterr().out
        assert "x4 shards" in sharded
        assert main(["run", "Mti"]) == 0
        plain = capsys.readouterr().out
        count = lambda out: out.splitlines()[0].split(" maximal")[0]
        assert count(sharded) == count(plain)

    def test_cli_shards_rejects_fault_flags(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "Mti", "--shards", "2", "--fault-sm-crash", "0.1"])
        with pytest.raises(SystemExit):
            main(["run", "Mti", "--shards", "2", "--algo", "mbea"])

    def test_telemetry_shard_spans_nest_under_job(self, graph):
        from repro.telemetry import RingSink, Telemetry

        sink = RingSink()
        telemetry = Telemetry(sinks=[sink])
        ShardCoordinator(graph, 2, telemetry=telemetry).run()
        telemetry.flush()
        spans = [r for r in sink.records() if r.get("type") == "span"]
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        assert "shard.job" in by_name
        assert "shard.plan" in by_name and "shard.merge" in by_name
        assert len(by_name.get("shard.run", [])) == 2
        job = by_name["shard.job"][0]
        for child in by_name["shard.run"]:
            # shard.run executes on a worker thread but still nests
            # under the coordinator's shard.job trace
            assert child["trace_id"] == job["trace_id"]
        counters = telemetry.registry.snapshot()
        assert counters["shard.jobs"] == 1
        assert counters["shard.runs"] == 2


# ----------------------------------------------------------------------
# Property: any graph, any N (slow tier)
# ----------------------------------------------------------------------
@st.composite
def bipartite_graphs(draw):
    n_u = draw(st.integers(1, 8))
    n_v = draw(st.integers(1, 7))
    edges = draw(
        st.sets(
            st.tuples(st.integers(0, n_u - 1), st.integers(0, n_v - 1)),
            max_size=n_u * n_v,
        )
    )
    return BipartiteGraph.from_edges(n_u, n_v, list(edges))


@pytest.mark.slow
@given(g=bipartite_graphs(), n_shards=st.integers(1, 9))
@settings(max_examples=50, deadline=None)
def test_property_shard_union_equals_single_run(g, n_shards):
    reference = _reference(g)
    plan = ShardPlan.build(g, n_shards)
    # ownership sets pairwise disjoint + complete
    owned = [set(plan.owned(i).tolist()) for i in range(n_shards)]
    for i in range(n_shards):
        for j in range(i + 1, n_shards):
            assert not (owned[i] & owned[j])
    assert len(set().union(*owned)) == plan.n_roots
    report = ShardCoordinator(g, n_shards, plan=plan).run()
    assert report.bicliques == reference
    assert len(report.bicliques) == len(set(report.bicliques))
