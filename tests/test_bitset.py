"""Unit and property tests for the packed-bitset kernels and universes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitset
from repro.core.bicliques import Counters
from repro.core.bitset import BitsetUniverse, resolve_backend
from repro.core.localcount import LocalCounter
from repro.graph import random_bipartite

positions = st.lists(
    st.integers(min_value=0, max_value=200), max_size=60
).map(lambda xs: np.array(sorted(set(xs)), dtype=np.int64))


class TestPackUnpack:
    @given(positions)
    @settings(max_examples=60)
    def test_roundtrip(self, pos):
        words = bitset.from_sorted(pos, 201)
        assert bitset.to_sorted(words).tolist() == pos.tolist()

    @given(positions)
    @settings(max_examples=60)
    def test_popcount(self, pos):
        assert bitset.popcount(bitset.from_sorted(pos, 201)) == len(pos)

    def test_empty(self):
        words = bitset.from_sorted(np.empty(0, dtype=np.int64), 0)
        assert len(words) == 1  # always at least one word
        assert bitset.popcount(words) == 0
        assert bitset.to_sorted(words).tolist() == []

    def test_word_boundaries(self):
        for n in (63, 64, 65, 127, 128, 129):
            pos = np.array([0, n - 1], dtype=np.int64)
            words = bitset.from_sorted(pos, n)
            assert len(words) == bitset.n_words(n)
            assert bitset.to_sorted(words).tolist() == [0, n - 1]

    @given(positions)
    @settings(max_examples=40)
    def test_test_bits(self, pos):
        words = bitset.from_sorted(pos, 201)
        probe = np.arange(201, dtype=np.int64)
        got = bitset.test_bits(words, probe)
        assert np.nonzero(got)[0].tolist() == pos.tolist()


class TestWordOps:
    @given(positions, positions)
    @settings(max_examples=60)
    def test_and_or_andnot_match_python_sets(self, a, b):
        wa = bitset.from_sorted(a, 201)
        wb = bitset.from_sorted(b, 201)
        sa, sb = set(a.tolist()), set(b.tolist())
        assert set(bitset.to_sorted(bitset.and_(wa, wb)).tolist()) == sa & sb
        assert set(bitset.to_sorted(bitset.or_(wa, wb)).tolist()) == sa | sb
        assert set(bitset.to_sorted(bitset.andnot(wa, wb)).tolist()) == sa - sb

    @given(positions, positions)
    @settings(max_examples=40)
    def test_count_rows_vs_mask(self, a, b):
        wa = bitset.from_sorted(a, 201)
        wb = bitset.from_sorted(b, 201)
        rows = np.vstack([wa, wb])
        counts = bitset.count_rows_vs_mask(rows, wa)
        assert counts.tolist() == [
            len(a),
            len(set(a.tolist()) & set(b.tolist())),
        ]


class TestUniverse:
    def test_rows_match_adjacency(self, paper_graph):
        left = np.array([0, 1, 2, 3, 4], dtype=np.int32)
        scope = np.array([0, 1, 2, 3], dtype=np.int32)
        uni = BitsetUniverse.build(paper_graph, left, scope)
        for j, v in enumerate(scope):
            got = uni.left[bitset.to_sorted(uni.rows[j])]
            assert got.tolist() == paper_graph.neighbors_v(int(v)).tolist()

    def test_subset_positions(self, paper_graph):
        left = np.array([0, 1, 3], dtype=np.int32)
        scope = np.array([0, 1, 3], dtype=np.int32)
        uni = BitsetUniverse.build(paper_graph, left, scope)
        mask = uni.mask_of_left_subset(np.array([1, 3], dtype=np.int32))
        assert uni.left_ids(mask).tolist() == [1, 3]
        # row of v2 (=1): neighbors within {u1,u2,u4} = all three
        assert bitset.popcount(uni.row(1) & mask) == 2

    def test_random_rows(self):
        g = random_bipartite(40, 30, 0.3, seed=3)
        rng = np.random.default_rng(0)
        left = np.sort(rng.choice(40, size=17, replace=False)).astype(np.int32)
        scope = np.sort(rng.choice(30, size=11, replace=False)).astype(np.int32)
        uni = BitsetUniverse.build(g, left, scope)
        for j, v in enumerate(scope):
            expect = sorted(
                set(g.neighbors_v(int(v)).tolist()) & set(left.tolist())
            )
            assert uni.left[bitset.to_sorted(uni.rows[j])].tolist() == expect

    def test_counts_vs_mask_matches_localcounter(self):
        g = random_bipartite(50, 35, 0.25, seed=4)
        lc = LocalCounter(g)
        rng = np.random.default_rng(1)
        left = np.sort(rng.choice(50, size=20, replace=False)).astype(np.int32)
        scope = np.arange(35, dtype=np.int32)
        uni = BitsetUniverse.build(g, left, scope)
        sub = np.sort(rng.choice(left, size=9, replace=False))
        cands = np.sort(rng.choice(35, size=12, replace=False)).astype(np.int64)
        lc.set_left(sub)
        expect, _ = lc.counts(cands)
        mask = uni.mask_of_left_subset(sub)
        c = Counters()
        got, work = lc.counts_vs_mask(uni, uni.row_index(cands), mask, c)
        assert got.tolist() == expect.tolist()
        assert work == 12 * uni.n_words
        assert c.set_op_work == work
        assert c.simt_cycles > 0


class TestResolveBackend:
    def test_explicit_settings_pass_through(self):
        assert resolve_backend("sorted", 100, 10, 10, 10**6) == "sorted"
        assert resolve_backend("bitset", 100, 10, 10, 1) == "bitset"

    def test_auto_dense_picks_bitset(self):
        # 100 left bits -> 2 words/row; average degree 50 >> 2
        assert resolve_backend("auto", 100, 20, 40, 40 * 50) == "bitset"

    def test_auto_sparse_picks_sorted(self):
        # 10k left bits -> 157 words/row; average degree 3
        assert resolve_backend("auto", 10_000, 20, 40, 40 * 3) == "sorted"

    def test_auto_trivial_task_stays_sorted(self):
        assert resolve_backend("auto", 100, 0, 40, 40 * 50) == "sorted"
        assert resolve_backend("auto", 0, 5, 40, 10) == "sorted"

    def test_rejected_elsewhere(self):
        from repro.gmbe import GMBEConfig

        with pytest.raises(ValueError):
            GMBEConfig(set_backend="nonsense")
