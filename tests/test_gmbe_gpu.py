"""Tests for GMBE on the simulated GPU (Alg. 4 execution)."""

import numpy as np
import pytest

from repro.core import BicliqueCollector, reference_mbe
from repro.gmbe import GMBEConfig, gmbe_gpu, gmbe_host
from repro.gpusim import A100, RTX2080TI, V100
from repro.graph import crown_graph, power_law_bipartite, random_bipartite

SPLIT_HARD = GMBEConfig(bound_height=2, bound_size=4)


class TestCorrectness:
    @pytest.mark.parametrize("scheduling", ["task", "warp", "block"])
    def test_modes_vs_oracle(self, scheduling):
        cfg = GMBEConfig(scheduling=scheduling, bound_height=2, bound_size=4)
        for seed in range(3):
            g = random_bipartite(12, 10, 0.3, seed=seed)
            col = BicliqueCollector()
            gmbe_gpu(g, col, config=cfg)
            assert col.as_set() == reference_mbe(g), (scheduling, seed)

    def test_paper_graph(self, paper_graph):
        col = BicliqueCollector()
        res = gmbe_gpu(paper_graph, col)
        assert res.n_maximal == 6
        assert col.as_set() == reference_mbe(paper_graph)

    def test_split_equals_nosplit(self):
        """Aggressive splitting must not change the biclique set."""
        g = power_law_bipartite(250, 130, 1200, seed=5)
        hard = gmbe_gpu(g, config=SPLIT_HARD)
        soft = gmbe_gpu(g, config=GMBEConfig(bound_height=10**6, bound_size=10**9))
        assert hard.n_maximal == soft.n_maximal

    def test_matches_host(self):
        g = power_law_bipartite(300, 150, 1500, seed=6)
        assert gmbe_gpu(g).n_maximal == gmbe_host(g).n_maximal

    def test_multi_gpu_counts_invariant(self):
        g = crown_graph(9)
        ref = reference_mbe(g)
        for n in (1, 2, 4, 8):
            col = BicliqueCollector()
            gmbe_gpu(g, col, n_gpus=n, config=SPLIT_HARD)
            assert col.as_set() == ref, n

    def test_device_invariance(self):
        g = power_law_bipartite(200, 100, 900, seed=7)
        counts = {
            dev.name: gmbe_gpu(g, device=dev).n_maximal
            for dev in (A100, V100, RTX2080TI)
        }
        assert len(set(counts.values())) == 1

    def test_warps_per_sm_invariance(self):
        g = power_law_bipartite(200, 100, 900, seed=8)
        counts = {
            w: gmbe_gpu(g, config=GMBEConfig(warps_per_sm=w)).n_maximal
            for w in (8, 16, 32)
        }
        assert len(set(counts.values())) == 1

    def test_invalid_n_gpus(self, paper_graph):
        with pytest.raises(ValueError):
            gmbe_gpu(paper_graph, n_gpus=0)


class TestSetBackendEquivalence:
    """sorted / bitset / auto must enumerate the identical biclique set
    with identical structural counters (maximality outcomes, pruning,
    nodes generated) — only the modeled work units may differ."""

    BACKENDS = ("sorted", "bitset", "auto")

    @staticmethod
    def _structural(res):
        c = res.counters
        return (
            res.n_maximal,
            c.maximal,
            c.non_maximal,
            c.pruned,
            c.nodes_generated,
        )

    def test_gpu_backends_identical(self):
        for seed in range(4):
            g = random_bipartite(16, 13, 0.3, seed=seed)
            sets_seen, structs = [], []
            for be in self.BACKENDS:
                col = BicliqueCollector()
                res = gmbe_gpu(
                    g,
                    col,
                    config=GMBEConfig(
                        set_backend=be, bound_height=2, bound_size=4
                    ),
                )
                sets_seen.append(col.as_set())
                structs.append(self._structural(res))
            assert sets_seen[0] == sets_seen[1] == sets_seen[2], seed
            assert sets_seen[0] == reference_mbe(g), seed
            assert structs[0] == structs[1] == structs[2], seed

    def test_host_backends_identical(self):
        for seed in range(4):
            g = power_law_bipartite(120, 70, 700, seed=seed)
            sets_seen, structs = [], []
            for be in self.BACKENDS:
                col = BicliqueCollector()
                res = gmbe_host(g, col, config=GMBEConfig(set_backend=be))
                sets_seen.append(col.as_set())
                structs.append(self._structural(res))
            assert sets_seen[0] == sets_seen[1] == sets_seen[2], seed
            assert structs[0] == structs[1] == structs[2], seed

    def test_no_prune_backends_identical(self):
        g = random_bipartite(14, 11, 0.35, seed=9)
        results = []
        for be in self.BACKENDS:
            col = BicliqueCollector()
            res = gmbe_gpu(
                g, col, config=GMBEConfig(set_backend=be, prune=False)
            )
            results.append((col.as_set(), self._structural(res)))
        assert results[0] == results[1] == results[2]

    def test_auto_tally_reported(self):
        g = power_law_bipartite(200, 100, 900, seed=7)
        res = gmbe_gpu(g, config=GMBEConfig(set_backend="auto"))
        tally = res.extras["set_backend_tasks"]
        assert set(tally) == {"sorted", "bitset"}
        assert tally["sorted"] + tally["bitset"] > 0

    def test_bitset_reduces_modeled_work_on_dense(self):
        g = random_bipartite(60, 40, 0.5, seed=14)
        srt = gmbe_gpu(g, config=GMBEConfig(set_backend="sorted"))
        bit = gmbe_gpu(g, config=GMBEConfig(set_backend="bitset"))
        assert bit.n_maximal == srt.n_maximal
        assert bit.counters.simt_cycles < srt.counters.simt_cycles
        assert bit.sim_time < srt.sim_time


class TestSimulationOutputs:
    @pytest.fixture(scope="class")
    def run(self):
        g = power_law_bipartite(400, 200, 2000, seed=9)
        return gmbe_gpu(g, config=GMBEConfig(bound_height=4, bound_size=40))

    def test_sim_time_positive(self, run):
        assert run.sim_time > 0

    def test_report_structure(self, run):
        rep = run.extras["report"]
        assert rep.tasks_executed > 0
        assert rep.makespan_cycles > 0
        assert len(rep.per_device_cycles) == 1

    def test_splits_happened(self, run):
        assert run.extras["report"].tasks_split > 0

    def test_queue_stats_nonzero_when_splitting(self, run):
        stats = run.extras["queue_stats"][0]
        assert stats.local_enqueues + stats.global_enqueues > 0
        assert stats.local_dequeues + stats.global_dequeues > 0

    def test_warp_efficiency_in_range(self, run):
        assert 0.0 < run.extras["warp_efficiency"] <= 1.0

    def test_recorder_intervals_well_formed(self, run):
        rec = run.extras["report"].recorders[0]
        for spans in rec.intervals.values():
            for s, e in spans:
                assert e >= s >= 0.0

    def test_per_gpu_seconds(self, run):
        per = run.extras["per_gpu_seconds"]
        assert len(per) == 1
        assert per[0] == pytest.approx(run.sim_time)


class TestSchedulingPerformance:
    def test_task_centric_not_slower_than_warp_on_skewed(self):
        """The Fig. 8/9 claim: task splitting rebalances skewed trees."""
        from repro.graph import block_overlap_bipartite

        g = block_overlap_bipartite(
            500, 170, 12, memberships_u=1.8, memberships_v=1.5, intra_p=0.35, seed=10
        )
        task = gmbe_gpu(g, config=GMBEConfig(scheduling="task"))
        warp = gmbe_gpu(g, config=GMBEConfig(scheduling="warp"))
        assert task.n_maximal == warp.n_maximal
        assert task.sim_time <= warp.sim_time * 1.05

    def test_multi_gpu_speedup_on_wide_work(self):
        from repro.graph import block_overlap_bipartite

        g = block_overlap_bipartite(
            600, 200, 14, memberships_u=1.8, memberships_v=1.5, intra_p=0.32, seed=11
        )
        t1 = gmbe_gpu(g, n_gpus=1).sim_time
        t4 = gmbe_gpu(g, n_gpus=4).sim_time
        assert t4 <= t1  # more devices never slower under the shared counter
