"""Tests for the enumeration certification tool."""

import pytest

from repro.core import Biclique, BicliqueCollector, oombea
from repro.graph import random_bipartite, write_edge_list
from repro.verify import (
    VerificationReport,
    parse_biclique_file,
    verify_enumeration,
)


@pytest.fixture
def graph():
    return random_bipartite(12, 9, 0.35, seed=5)


@pytest.fixture
def truth(graph):
    col = BicliqueCollector()
    oombea(graph, col)
    return col.bicliques


class TestVerifyEnumeration:
    def test_correct_claim_passes(self, graph, truth):
        report = verify_enumeration(graph, truth)
        assert report.ok
        assert "OK" in report.summary()

    def test_missing_detected(self, graph, truth):
        report = verify_enumeration(graph, truth[:-1])
        assert not report.ok and len(report.missing) == 1

    def test_spurious_and_nonmaximal_detected(self, graph, truth):
        bogus = Biclique.make([truth[0].left[0]], [truth[0].right[0]])
        claim = truth + ([bogus] if bogus not in truth else [])
        report = verify_enumeration(graph, claim)
        assert not report.ok
        assert bogus in report.spurious or bogus in report.not_maximal

    def test_non_biclique_detected(self, graph, truth):
        # find a non-edge pair
        for u in range(graph.n_u):
            for v in range(graph.n_v):
                if not graph.has_edge(u, v):
                    fake = Biclique.make([u], [v])
                    report = verify_enumeration(graph, truth + [fake])
                    assert fake in report.not_bicliques
                    return
        pytest.skip("graph is complete")

    def test_duplicates_counted(self, graph, truth):
        report = verify_enumeration(graph, truth + truth[:2])
        assert report.duplicates == 2

    def test_deep_check_off_still_compares_sets(self, graph, truth):
        report = verify_enumeration(graph, truth[:-1], deep_check=False)
        assert not report.ok and report.missing

    def test_all_reference_algorithms(self, graph, truth):
        for ref in ("oombea", "imbea", "mbea"):
            assert verify_enumeration(
                graph, truth, reference_algorithm=ref, deep_check=False
            ).ok

    def test_unknown_reference(self, graph, truth):
        with pytest.raises(ValueError):
            verify_enumeration(graph, truth, reference_algorithm="gpt")


class TestParseBicliqueFile:
    def test_roundtrip_with_writer(self, graph, tmp_path):
        from repro.core import BicliqueWriter

        path = tmp_path / "out.txt"
        with path.open("w") as fh:
            oombea(graph, BicliqueWriter(fh))
        parsed = parse_biclique_file(path)
        col = BicliqueCollector()
        oombea(graph, col)
        assert set(parsed) == col.as_set()

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("# header\n\n1,2 | 3\n")
        assert parse_biclique_file(path) == [Biclique.make([1, 2], [3])]

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("1,2,3\n")
        with pytest.raises(ValueError, match="line 1"):
            parse_biclique_file(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("a | b\n")
        with pytest.raises(ValueError, match="non-integer"):
            parse_biclique_file(path)


class TestCLI:
    def test_verify_roundtrip(self, graph, tmp_path, capsys):
        from repro.cli import main

        gp = tmp_path / "g.tsv"
        op = tmp_path / "out.txt"
        write_edge_list(graph, gp)
        assert main(["run", str(gp), "--algo", "oombea", "--output", str(op)]) == 0
        assert main(["verify", str(gp), str(op)]) == 0
        out = capsys.readouterr().out
        assert "certified" in out

    def test_verify_fails_on_truncated(self, graph, tmp_path, capsys):
        from repro.cli import main

        gp = tmp_path / "g.tsv"
        op = tmp_path / "out.txt"
        write_edge_list(graph, gp)
        main(["run", str(gp), "--algo", "oombea", "--output", str(op)])
        lines = op.read_text().splitlines()
        op.write_text("\n".join(lines[:-1]) + "\n")
        assert main(["verify", str(gp), str(op)]) == 1
