"""Unit tests for the simulated-GPU kernel internals (splitting, checks)."""

import numpy as np
import pytest

from repro.core import BicliqueCollector
from repro.gmbe import GMBEConfig, SubtreeTask, gmbe_gpu, gmbe_host
from repro.gmbe.kernel import _should_split
from repro.graph import block_overlap_bipartite, power_law_bipartite


class TestShouldSplit:
    def make_task(self, n_left, n_cands):
        return SubtreeTask(
            left=np.arange(n_left, dtype=np.int32),
            right=np.array([0], dtype=np.int32),
            cands=np.arange(n_cands, dtype=np.int32),
            counts=np.ones(n_cands, dtype=np.int64),
        )

    def test_both_bounds_must_trip(self):
        cfg = GMBEConfig(bound_height=10, bound_size=200, scheduling="task")
        # height 5 <= 10: no split even though size estimate is big
        assert not _should_split(self.make_task(5, 1000), cfg)
        # height 11 > 10 but size 11*11 = 121 <= 200: no split either
        assert not _should_split(self.make_task(50, 11), cfg)

    def test_splits_when_both_exceed(self):
        cfg = GMBEConfig(bound_height=10, bound_size=100, scheduling="task")
        assert _should_split(self.make_task(50, 40), cfg)

    def test_never_splits_for_warp_block(self):
        for scheme in ("warp", "block"):
            cfg = GMBEConfig(bound_height=1, bound_size=1, scheduling=scheme)
            assert not _should_split(self.make_task(100, 100), cfg)


class TestSplitEquivalence:
    @pytest.mark.parametrize("prune", [True, False])
    def test_aggressive_split_same_set(self, prune):
        g = power_law_bipartite(200, 110, 1000, seed=13)
        ref = BicliqueCollector()
        gmbe_host(g, ref, config=GMBEConfig(prune=prune))
        got = BicliqueCollector()
        gmbe_gpu(
            g,
            got,
            config=GMBEConfig(bound_height=1, bound_size=1, prune=prune),
        )
        assert got.as_set() == ref.as_set()

    def test_split_prune_reduces_checks(self):
        g = block_overlap_bipartite(
            300, 110, 10, memberships_u=1.8, memberships_v=1.5,
            intra_p=0.35, seed=3,
        )
        cfg = GMBEConfig(bound_height=3, bound_size=20)
        on = gmbe_gpu(g, config=cfg)
        off = gmbe_gpu(g, config=cfg.with_(prune=False))
        assert on.n_maximal == off.n_maximal
        assert on.counters.non_maximal < off.counters.non_maximal

    def test_dequeued_children_counted_in_tasks(self):
        g = power_law_bipartite(300, 150, 1600, seed=14)
        hard = gmbe_gpu(g, config=GMBEConfig(bound_height=2, bound_size=4))
        soft = gmbe_gpu(g, config=GMBEConfig(bound_height=10**6, bound_size=10**9))
        assert (
            hard.extras["report"].tasks_executed
            > soft.extras["report"].tasks_executed
        )


class TestDurationModels:
    def test_block_mode_single_unit_per_sm(self):
        g = power_law_bipartite(100, 60, 500, seed=15)
        res = gmbe_gpu(g, config=GMBEConfig(scheduling="block"))
        assert res.extras["units_per_sm"] == 1

    def test_task_mode_warp_units(self):
        g = power_law_bipartite(100, 60, 500, seed=15)
        res = gmbe_gpu(g, config=GMBEConfig(warps_per_sm=8))
        assert res.extras["units_per_sm"] == 8

    def test_occupancy_derate_slows_per_warp(self):
        """With warps in excess of tasks, higher WarpPerSM cannot help,
        and past 16 the derate makes each warp strictly slower."""
        g = power_law_bipartite(120, 70, 600, seed=16)
        t16 = gmbe_gpu(g, config=GMBEConfig(warps_per_sm=16)).sim_time
        t32 = gmbe_gpu(g, config=GMBEConfig(warps_per_sm=32)).sim_time
        assert t32 >= t16
